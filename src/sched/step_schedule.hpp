/// \file step_schedule.hpp
/// \brief Abstract discrete-step communication schedules and their exact
/// combinatorial checking.
///
/// The paper presents its algorithms as step-indexed pseudocode: at every
/// step a set of (link, packet) sends happens simultaneously.  This layer
/// reproduces that abstraction exactly, independent of any timing model,
/// and provides the two checks the paper's claims rest on:
///
///  * contention-freedom - no two sends use the same directed link in the
///    same step (the property that makes every relay a cut-through);
///  * delivery - after the schedule runs, every node has received the
///    required number of copies of every other node's message.
///
/// Schedules are *streamed* step by step instead of materialized: an
/// all-to-all broadcast on a 1024-node hypercube performs ~10^7 sends, so
/// checkers work in O(links) memory.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ihc {

/// One send in a schedule step: `origin`'s packet crosses `link`, tagged
/// with the logical route (directed cycle / tree copy) it travels on.
struct ScheduleSend {
  LinkId link;
  NodeId origin;
  std::uint16_t route;
};

/// Stream interface over a step-indexed schedule.
class StepScheduleSource {
 public:
  virtual ~StepScheduleSource() = default;

  [[nodiscard]] virtual std::uint64_t step_count() const = 0;

  /// Appends the sends of `step` to `out` (out is not cleared).
  virtual void sends_at(std::uint64_t step,
                        std::vector<ScheduleSend>& out) const = 0;
};

/// Result of replaying a schedule against a graph.
struct ScheduleCheck {
  std::uint64_t total_sends = 0;
  /// Number of (step, link) collisions - 0 proves contention-freedom.
  std::uint64_t link_conflicts = 0;
  /// copies[origin * n + dest] = distinct routes that delivered origin's
  /// packet to dest (dest = target of a send's link).
  std::vector<std::uint8_t> copies;

  /// True when every ordered pair (origin != dest) received at least
  /// `required` copies.
  [[nodiscard]] bool all_delivered(NodeId node_count,
                                   std::uint8_t required) const;
};

/// Replays the schedule, counting conflicts and per-pair deliveries.
[[nodiscard]] ScheduleCheck check_schedule(const Graph& g,
                                           const StepScheduleSource& source);

}  // namespace ihc
