/// \file ihc_schedule.hpp
/// \brief The IHC algorithm as an abstract step schedule (Section IV).
///
/// Stage i (0 <= i < eta): every node v with ID_j(v) mod eta == i initiates
/// its packet on directed cycle HC_j; packets then flow N-1 hops along
/// their cycle, one hop per step, all cycles in parallel.  A stage thus
/// occupies N-1 steps and the whole schedule eta * (N-1) steps.  Because
/// initiators on one cycle are spaced eta apart and all packets advance in
/// lockstep, no two packets ever use the same directed link in the same
/// step - the property check_schedule() verifies.
#pragma once

#include <memory>

#include "sched/step_schedule.hpp"
#include "topology/topology.hpp"

namespace ihc {

class IhcSchedule final : public StepScheduleSource {
 public:
  /// \param topo  host topology (must outlive the schedule)
  /// \param eta   interleaving distance, 1 <= eta <= N
  IhcSchedule(const Topology& topo, std::uint32_t eta);

  [[nodiscard]] std::uint32_t eta() const { return eta_; }

  /// Initiators of stage `i` on directed cycle `j` (paper notation: nodes v
  /// with [ID_j(v)]_eta = i).
  [[nodiscard]] std::vector<NodeId> initiators(std::uint32_t stage,
                                               std::size_t cycle) const;

  [[nodiscard]] std::uint64_t step_count() const override;
  void sends_at(std::uint64_t step,
                std::vector<ScheduleSend>& out) const override;

 private:
  const Topology* topo_;
  std::uint32_t eta_;
};

}  // namespace ihc
