/// \file rs_schedule.hpp
/// \brief Ramanathan-Shin reliable broadcast schedule for hypercubes
/// (Section V-A, Table I, Example 1).
///
/// A source s first sends its packet to all gamma neighbors (step 1); the
/// copy entering through direction c then executes recursive doubling over
/// directions c+1, c+2, ..., c+gamma (mod gamma), one direction per step.
/// Each copy traces an edge-disjoint spanning tree, so every node receives
/// gamma copies through node-disjoint paths.  The final step's sends that
/// would return a copy to the source may be omitted (the bold entries of
/// Table I).
///
/// The schedule also classifies each send as a *forward* (the sender
/// received the copy on the previous step - implementable as cut-through)
/// or a *redirect/initiation* (store-and-forward), which is exactly the
/// column structure of Table I and the cost model of the VRS algorithm.
#pragma once

#include <vector>

#include "sched/step_schedule.hpp"
#include "topology/hypercube.hpp"

namespace ihc {

/// One send of the RS broadcast with its Table-I classification.
struct RsSend {
  NodeId from;
  NodeId to;
  std::uint32_t step;    ///< 1-based step number, as in Table I
  std::uint16_t copy;    ///< which of the gamma copies (entry direction c)
  bool forward;          ///< true: cut-through; false: initiate/redirect
  bool returns_to_source;  ///< optional send (bold in Table I)
};

/// Generates the full RS schedule for a broadcast from `source`.
[[nodiscard]] std::vector<RsSend> rs_broadcast_sends(const Hypercube& cube,
                                                     NodeId source);

/// The RS broadcast as a streamable step schedule (steps 1..gamma+1 mapped
/// to 0-based); `include_returns` keeps or drops the optional final sends.
class RsSchedule final : public StepScheduleSource {
 public:
  RsSchedule(const Hypercube& cube, NodeId source, bool include_returns);

  [[nodiscard]] std::uint64_t step_count() const override;
  void sends_at(std::uint64_t step,
                std::vector<ScheduleSend>& out) const override;

  [[nodiscard]] const std::vector<RsSend>& sends() const { return sends_; }

 private:
  const Hypercube* cube_;
  NodeId source_;
  bool include_returns_;
  std::vector<RsSend> sends_;
};

}  // namespace ihc
