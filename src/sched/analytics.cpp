#include "sched/analytics.hpp"

#include <algorithm>

namespace ihc {

ScheduleLoadReport analyze_schedule_load(const Graph& g,
                                         const StepScheduleSource& source) {
  ScheduleLoadReport report;
  report.per_link.assign(g.link_count(), 0);
  std::vector<ScheduleSend> sends;
  const std::uint64_t steps = source.step_count();
  std::uint64_t total_busy = 0;
  for (std::uint64_t step = 0; step < steps; ++step) {
    sends.clear();
    source.sends_at(step, sends);
    for (const ScheduleSend& s : sends) ++report.per_link[s.link];
    report.peak_busy_links =
        std::max<std::uint64_t>(report.peak_busy_links, sends.size());
    total_busy += sends.size();
  }
  if (!report.per_link.empty()) {
    report.min_load =
        *std::min_element(report.per_link.begin(), report.per_link.end());
    report.max_load =
        *std::max_element(report.per_link.begin(), report.per_link.end());
    std::uint64_t sum = 0;
    for (const auto v : report.per_link) sum += v;
    report.mean_load =
        static_cast<double>(sum) / static_cast<double>(report.per_link.size());
  }
  if (steps > 0 && g.link_count() > 0) {
    report.mean_busy_fraction =
        static_cast<double>(total_busy) /
        (static_cast<double>(steps) * g.link_count());
  }
  return report;
}

}  // namespace ihc
