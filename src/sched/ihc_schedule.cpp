#include "sched/ihc_schedule.hpp"

#include "util/error.hpp"

namespace ihc {

IhcSchedule::IhcSchedule(const Topology& topo, std::uint32_t eta)
    : topo_(&topo), eta_(eta) {
  require(eta >= 1 && eta <= topo.node_count(),
          "eta must lie in [1, N]");
}

std::vector<NodeId> IhcSchedule::initiators(std::uint32_t stage,
                                            std::size_t cycle) const {
  require(stage < eta_, "stage out of range");
  const DirectedCycle& hc = topo_->directed_cycles().at(cycle);
  std::vector<NodeId> out;
  for (std::size_t pos = stage; pos < hc.length(); pos += eta_)
    out.push_back(hc.at(pos));
  return out;
}

std::uint64_t IhcSchedule::step_count() const {
  return static_cast<std::uint64_t>(eta_) * (topo_->node_count() - 1);
}

void IhcSchedule::sends_at(std::uint64_t step,
                           std::vector<ScheduleSend>& out) const {
  const NodeId n = topo_->node_count();
  const auto stage = static_cast<std::uint32_t>(step / (n - 1));
  // Hop index within the stage: hop h moves every stage packet from the
  // node at distance h from its initiator to the node at distance h+1.
  const auto hop = static_cast<std::size_t>(step % (n - 1));
  const auto& cycles = topo_->directed_cycles();
  const Graph& g = topo_->graph();
  for (std::size_t j = 0; j < cycles.size(); ++j) {
    const DirectedCycle& hc = cycles[j];
    for (std::size_t pos = stage; pos < hc.length(); pos += eta_) {
      const NodeId origin = hc.at(pos);
      const NodeId from = hc.at((pos + hop) % n);
      const NodeId to = hc.at((pos + hop + 1) % n);
      out.push_back(ScheduleSend{g.link(from, to), origin,
                                 static_cast<std::uint16_t>(j)});
    }
  }
}

}  // namespace ihc
