#include "sched/rs_schedule.hpp"

#include "util/error.hpp"

namespace ihc {

std::vector<RsSend> rs_broadcast_sends(const Hypercube& cube, NodeId source) {
  const unsigned m = cube.dimension();
  std::vector<RsSend> out;
  for (unsigned c = 0; c < m; ++c) {
    // Holders of copy c with the step at which they acquired it.
    std::vector<std::pair<NodeId, std::uint32_t>> holders;
    const NodeId entry = cube.neighbor(source, c);
    out.push_back(RsSend{source, entry, 1, static_cast<std::uint16_t>(c),
                         /*forward=*/false, /*returns_to_source=*/false});
    holders.emplace_back(entry, 1);
    for (std::uint32_t t = 2; t <= m + 1; ++t) {
      const unsigned d = (c + t - 1) % m;
      const std::size_t count = holders.size();
      for (std::size_t i = 0; i < count; ++i) {
        const auto [v, acquired] = holders[i];
        const NodeId w = cube.neighbor(v, d);
        out.push_back(RsSend{v, w, t, static_cast<std::uint16_t>(c),
                             /*forward=*/acquired == t - 1,
                             /*returns_to_source=*/w == source});
        if (w != source) holders.emplace_back(w, t);
      }
    }
  }
  return out;
}

RsSchedule::RsSchedule(const Hypercube& cube, NodeId source,
                       bool include_returns)
    : cube_(&cube), source_(source), include_returns_(include_returns) {
  require(source < cube.node_count(), "source out of range");
  sends_ = rs_broadcast_sends(cube, source);
  if (!include_returns_) {
    std::erase_if(sends_,
                  [](const RsSend& s) { return s.returns_to_source; });
  }
}

std::uint64_t RsSchedule::step_count() const {
  return cube_->dimension() + 1;
}

void RsSchedule::sends_at(std::uint64_t step,
                          std::vector<ScheduleSend>& out) const {
  const Graph& g = cube_->graph();
  for (const RsSend& s : sends_) {
    if (s.step != step + 1) continue;
    out.push_back(ScheduleSend{g.link(s.from, s.to), source_, s.copy});
  }
}

}  // namespace ihc
