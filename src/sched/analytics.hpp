/// \file analytics.hpp
/// \brief Structural analytics over step schedules.
///
/// Beyond conflict-freedom, the IHC schedule has a striking load property
/// this module measures: over a full ATA run, every directed link of the
/// network carries *exactly* N-1 packets (each of the N packets on a
/// link's cycle crosses it except the one whose route ends just before
/// it).  Perfectly uniform link load is why Theorem 4's lower bound -
/// which assumes work can be spread evenly - is actually attained.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sched/step_schedule.hpp"

namespace ihc {

struct ScheduleLoadReport {
  std::vector<std::uint64_t> per_link;  ///< sends per directed link
  std::uint64_t min_load = 0;
  std::uint64_t max_load = 0;
  double mean_load = 0.0;
  /// Peak number of links busy in any single step.
  std::uint64_t peak_busy_links = 0;
  /// Mean fraction of links busy per step.
  double mean_busy_fraction = 0.0;

  [[nodiscard]] bool perfectly_uniform() const {
    return min_load == max_load;
  }
};

/// Replays the schedule and aggregates per-link and per-step load.
[[nodiscard]] ScheduleLoadReport analyze_schedule_load(
    const Graph& g, const StepScheduleSource& source);

}  // namespace ihc
