#include "graph/hc_product.hpp"

#include <algorithm>

#include "graph/lemma2.hpp"
#include "graph/torus_decomposition.hpp"
#include "util/error.hpp"

namespace ihc {

std::vector<Cycle> product_hamiltonian_cycles(const std::vector<Cycle>& high,
                                              const std::vector<Cycle>& low,
                                              NodeId low_count) {
  require(!high.empty() && !low.empty(),
          "both factors need at least one Hamiltonian cycle");
  const std::size_t p = std::min(high.size(), low.size());
  const std::size_t q = std::max(high.size(), low.size());
  require(q - p <= 1, "factor cycle counts may differ by at most 1");
  const bool extra_on_high = high.size() > low.size();
  const std::size_t pairs = (p == q) ? p : p - 1;

  auto product_id = [low_count](NodeId g, NodeId h) {
    return g * low_count + h;
  };

  std::vector<Cycle> out;
  out.reserve(p + q);

  // Lemma 1 pairs: cycles high[i] and low[i] span a torus
  // C_|high| x C_|low| inside the product; decompose it into two
  // Hamiltonian cycles of the product.
  for (std::size_t i = 0; i < pairs; ++i) {
    const Cycle& cg = high[i];
    const Cycle& ch = low[i];
    const auto rows = static_cast<NodeId>(cg.length());
    const auto cols = static_cast<NodeId>(ch.length());
    for (const Cycle& torus_hc : torus_two_hamiltonian_cycles(rows, cols)) {
      std::vector<NodeId> mapped;
      mapped.reserve(torus_hc.length());
      for (const NodeId t : torus_hc.nodes())
        mapped.push_back(product_id(cg.at(t / cols), ch.at(t % cols)));
      out.emplace_back(std::move(mapped));
    }
  }

  if (p != q) {
    // Lemma 2: the side with q cycles contributes its last two (H1, H2);
    // the other side its last one as the cycle factor C_r.
    const std::vector<Cycle>& two_side = extra_on_high ? high : low;
    const std::vector<Cycle>& one_side = extra_on_high ? low : high;
    const Cycle& h1 = two_side[q - 2];
    const Cycle& h2 = two_side[q - 1];
    const Cycle& cr = one_side[p - 1];
    const auto r = static_cast<NodeId>(cr.length());
    for (const Cycle& prod_hc : lemma2_three_hamiltonian_cycles(h1, h2, r)) {
      std::vector<NodeId> mapped;
      mapped.reserve(prod_hc.length());
      for (const NodeId t : prod_hc.nodes()) {
        const NodeId v = t / r;      // vertex on the (H1 u H2) side
        const NodeId layer = t % r;  // position along cr
        const NodeId other = cr.at(layer);
        mapped.push_back(extra_on_high ? product_id(v, other)
                                       : product_id(other, v));
      }
      out.emplace_back(std::move(mapped));
    }
  }
  return out;
}

}  // namespace ihc
