#include "graph/decomposer.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ihc {
namespace {

/// One alternating square u-v-x-w between factors a (edges uv, xw) and
/// b (edges vx, wu).
struct Square {
  EdgeId e_uv, e_vx, e_xw, e_wu;
  NodeId u, v, x, w;
  std::size_t a, b;
};

/// The engine's working view of one factor: cycle-component labels plus the
/// position of every node along its component, which makes the effect of a
/// 2-opt computable in O(1):
///  * removed edges in different components  -> the factor merges (delta -1)
///  * removed edges in one component         -> the reconnection either
///    splits it (delta +1) or re-closes it (delta 0), decided by whether the
///    two removed edges are traversed in the same direction.
struct FactorView {
  std::vector<std::uint32_t> comp;  // node -> component id
  std::vector<std::uint32_t> pos;   // node -> index along its component
  std::vector<std::uint32_t> size;  // component id -> length
  std::uint32_t count = 0;

  /// +1 when `to` immediately follows `from` along the traversal, -1 when
  /// it precedes it.  (from, to) must be a factor edge.
  [[nodiscard]] int dir(NodeId from, NodeId to) const {
    const std::uint32_t s = size[comp[from]];
    return (pos[to] == (pos[from] + 1) % s) ? +1 : -1;
  }
};

class Engine {
 public:
  Engine(FactorSet factors, const DecomposeOptions& options,
         DecomposeStats* stats)
      : f_(std::move(factors)),
        k_(f_.factor_count()),
        n_(f_.graph().node_count()),
        options_(options),
        stats_(stats) {}

  std::vector<Cycle> run() {
    views_.resize(k_);
    for (std::size_t attempt = 0; attempt <= options_.max_retries;
         ++attempt) {
      rng_ = SplitMix64(options_.seed + 0x9e3779b9u * attempt);
      if (attempt_merge()) {
        if (stats_) stats_->retries = attempt;
        std::vector<Cycle> out;
        out.reserve(k_);
        for (std::size_t f = 0; f < k_; ++f)
          out.push_back(f_.extract_single_cycle(f));
        return out;
      }
    }
    IHC_ENSURE(false,
               "Hamiltonian decomposition engine failed to converge; the "
               "seed factorization is unsuitable for this graph");
  }

 private:
  FactorSet f_;
  std::size_t k_;
  NodeId n_;
  DecomposeOptions options_;
  DecomposeStats* stats_;
  SplitMix64 rng_{0};
  std::vector<FactorView> views_;

  void refresh(std::size_t f) {
    FactorView& view = views_[f];
    view.comp.assign(n_, static_cast<std::uint32_t>(-1));
    view.pos.assign(n_, 0);
    view.size.clear();
    view.count = 0;
    for (NodeId start = 0; start < n_; ++start) {
      if (view.comp[start] != static_cast<std::uint32_t>(-1)) continue;
      const std::uint32_t c = view.count++;
      std::uint32_t len = 0;
      NodeId prev = kInvalidNode;
      NodeId cur = start;
      do {
        view.comp[cur] = c;
        view.pos[cur] = len++;
        const auto nb = f_.factor_neighbors(f, cur);
        const NodeId nxt = (nb[0] != prev) ? nb[0] : nb[1];
        prev = cur;
        cur = nxt;
      } while (cur != start);
      view.size.push_back(len);
    }
  }

  void refresh_all() {
    for (std::size_t f = 0; f < k_; ++f) refresh(f);
  }

  [[nodiscard]] std::uint32_t total_components() const {
    std::uint32_t t = 0;
    for (const auto& view : views_) t += view.count;
    return t;
  }

  /// Component-count change of factor a caused by the swap: -1, 0, or +1.
  [[nodiscard]] int delta_a(const Square& s) const {
    const FactorView& view = views_[s.a];
    if (view.comp[s.u] != view.comp[s.x]) return -1;
    return view.dir(s.u, s.v) == view.dir(s.x, s.w) ? +1 : 0;
  }

  /// Component-count change of factor b: the square shifted by one corner.
  [[nodiscard]] int delta_b(const Square& s) const {
    const FactorView& view = views_[s.b];
    if (view.comp[s.v] != view.comp[s.w]) return -1;
    return view.dir(s.v, s.x) == view.dir(s.w, s.u) ? +1 : 0;
  }

  void apply(const Square& s) {
    f_.swap_alternating_square(s.e_uv, s.e_vx, s.e_xw, s.e_wu, s.u, s.v, s.x,
                               s.w);
    refresh(s.a);
    refresh(s.b);
    if (stats_) ++stats_->swaps;
  }

  /// Visits alternating squares between factors a and b rooted at node u.
  /// fn returns true to stop the scan (a move was applied).
  template <typename Fn>
  bool for_squares_at(std::size_t a, std::size_t b, NodeId u, Fn&& fn) {
    const auto ea = f_.incident(a, u);
    for (const EdgeId e_uv : ea) {
      const auto [p, q] = f_.graph().edge(e_uv);
      const NodeId v = (p == u) ? q : p;
      const auto eb = f_.incident(b, v);
      for (const EdgeId e_vx : eb) {
        const auto [r, t] = f_.graph().edge(e_vx);
        const NodeId x = (r == v) ? t : r;
        if (x == u) continue;
        const auto ea2 = f_.incident(a, x);
        for (const EdgeId e_xw : ea2) {
          const auto [c, d] = f_.graph().edge(e_xw);
          const NodeId w = (c == x) ? d : c;
          if (w == v || w == u) continue;
          EdgeId e_wu;
          if (!f_.edge_in_factor(b, w, u, e_wu)) continue;
          if (fn(Square{e_uv, e_vx, e_xw, e_wu, u, v, x, w, a, b}))
            return true;
        }
      }
    }
    return false;
  }

  /// Scans squares rooted at `u` over all factor pairs; applies the first
  /// one with total delta <= threshold.  Returns true if applied.
  bool apply_improving_at(NodeId u, int threshold) {
    for (std::size_t a = 0; a < k_; ++a) {
      for (std::size_t b = 0; b < k_; ++b) {
        if (b == a) continue;
        const bool applied = for_squares_at(a, b, u, [&](const Square& s) {
          if (delta_a(s) + delta_b(s) > threshold) return false;
          remember_frontier(s);
          apply(s);
          return true;
        });
        if (applied) return true;
      }
    }
    return false;
  }

  /// Full-graph scan for a square with total delta <= threshold.
  bool apply_first_improving(int threshold) {
    for (NodeId u = 0; u < n_; ++u)
      if (apply_improving_at(u, threshold)) return true;
    return false;
  }

  /// Collects zero-delta squares rooted at `u`.
  void collect_zero_at(NodeId u, std::vector<Square>& zeros) {
    for (std::size_t a = 0; a < k_; ++a) {
      for (std::size_t b = 0; b < k_; ++b) {
        if (b == a) continue;
        for_squares_at(a, b, u, [&](const Square& s) {
          if (delta_a(s) + delta_b(s) == 0) zeros.push_back(s);
          return false;
        });
      }
    }
  }

  void remember_frontier(const Square& s) {
    frontier_.assign({s.u, s.v, s.x, s.w});
  }

  /// A plateau move biased towards the previous move's corners, falling
  /// back to random probes and finally a full scan.
  bool apply_plateau_move() {
    std::vector<Square> zeros;
    for (const NodeId u : frontier_) collect_zero_at(u, zeros);
    if (zeros.empty()) {
      for (int probe = 0; probe < 64 && zeros.empty(); ++probe)
        collect_zero_at(static_cast<NodeId>(rng_.below(n_)), zeros);
    }
    if (zeros.empty()) {
      for (NodeId u = 0; u < n_ && zeros.empty(); ++u)
        collect_zero_at(u, zeros);
    }
    if (zeros.empty()) return false;
    const Square s = zeros[rng_.below(zeros.size())];
    remember_frontier(s);
    apply(s);
    if (stats_) ++stats_->plateau_moves;
    return true;
  }

  /// Looks for an improving move: first around the frontier, then with
  /// random probes, then (periodically) with a full scan.
  bool apply_some_improving(bool allow_full_scan) {
    for (const NodeId u : frontier_)
      if (apply_improving_at(u, -1)) return true;
    for (int probe = 0; probe < 64; ++probe)
      if (apply_improving_at(static_cast<NodeId>(rng_.below(n_)), -1))
        return true;
    if (allow_full_scan) return apply_first_improving(-1);
    return false;
  }

  bool attempt_merge() {
    refresh_all();
    frontier_.clear();
    std::size_t plateau_budget = options_.plateau_factor * n_;
    std::size_t step = 0;
    while (total_components() > k_) {
      const bool full_scan = (step++ % 64 == 0);
      if (apply_some_improving(full_scan)) continue;
      if (plateau_budget == 0) {
        // Last chance: a definitive full scan before giving up.
        if (apply_first_improving(-1)) continue;
        return false;
      }
      --plateau_budget;
      if (!apply_plateau_move()) {
        // No zero-delta move anywhere: only a full improving scan can help.
        if (apply_first_improving(-1)) continue;
        return false;
      }
    }
    return true;
  }

  std::vector<NodeId> frontier_;
};

}  // namespace

std::vector<Cycle> merge_to_hamiltonian(FactorSet factors,
                                        const DecomposeOptions& options,
                                        DecomposeStats* stats) {
  Engine engine(std::move(factors), options, stats);
  return engine.run();
}

}  // namespace ihc
