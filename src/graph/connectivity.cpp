#include "graph/connectivity.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/error.hpp"

namespace ihc {
namespace {

/// Minimal Dinic max-flow on unit-ish capacities.
class Dinic {
 public:
  explicit Dinic(std::size_t node_count)
      : head_(node_count, -1), level_(node_count), iter_(node_count) {}

  void add_arc(std::uint32_t from, std::uint32_t to, std::uint32_t cap) {
    arcs_.push_back({to, head_[from], cap});
    head_[from] = static_cast<std::int32_t>(arcs_.size()) - 1;
    arcs_.push_back({from, head_[to], 0});
    head_[to] = static_cast<std::int32_t>(arcs_.size()) - 1;
  }

  std::uint32_t max_flow(std::uint32_t s, std::uint32_t t,
                         std::uint32_t limit =
                             std::numeric_limits<std::uint32_t>::max()) {
    std::uint32_t flow = 0;
    while (flow < limit && bfs(s, t)) {
      std::fill(iter_.begin(), iter_.end(), -2);
      for (std::size_t v = 0; v < head_.size(); ++v)
        iter_[v] = head_[v];
      std::uint32_t f;
      while (flow < limit && (f = dfs(s, t, limit - flow)) > 0) flow += f;
    }
    return flow;
  }

  /// Residual flow on the i-th added arc (arcs are added in pairs; the
  /// forward arc of call k has index 2k).
  [[nodiscard]] std::uint32_t flow_on(std::size_t arc_pair) const {
    return arcs_[2 * arc_pair + 1].cap;  // reverse capacity == pushed flow
  }

 private:
  struct Arc {
    std::uint32_t to;
    std::int32_t next;
    std::uint32_t cap;
  };

  bool bfs(std::uint32_t s, std::uint32_t t) {
    std::fill(level_.begin(), level_.end(), -1);
    std::queue<std::uint32_t> q;
    level_[s] = 0;
    q.push(s);
    while (!q.empty()) {
      const std::uint32_t v = q.front();
      q.pop();
      for (std::int32_t i = head_[v]; i >= 0;) {
        const Arc& a = arcs_[static_cast<std::size_t>(i)];
        if (a.cap > 0 && level_[a.to] < 0) {
          level_[a.to] = level_[v] + 1;
          q.push(a.to);
        }
        i = a.next;
      }
    }
    return level_[t] >= 0;
  }

  std::uint32_t dfs(std::uint32_t v, std::uint32_t t, std::uint32_t f) {
    if (v == t) return f;
    for (std::int32_t& i = iter_[v]; i >= 0; i = arcs_[static_cast<std::size_t>(i)].next) {
      Arc& a = arcs_[static_cast<std::size_t>(i)];
      if (a.cap > 0 && level_[a.to] == level_[v] + 1) {
        const std::uint32_t d = dfs(a.to, t, std::min(f, a.cap));
        if (d > 0) {
          a.cap -= d;
          arcs_[static_cast<std::size_t>(i ^ 1)].cap += d;
          return d;
        }
      }
    }
    return 0;
  }

  std::vector<Arc> arcs_;
  std::vector<std::int32_t> head_;
  std::vector<std::int32_t> level_;
  std::vector<std::int32_t> iter_;
};

/// Builds the node-split flow network for internally node-disjoint paths.
/// Node v -> v_in = 2v, v_out = 2v+1.  Returns the Dinic instance; the
/// arc-pair index of the directed edge u->v in the original graph is
/// recorded in `edge_arc` (indexed by LinkId) for path extraction.
Dinic build_split_network(const Graph& g, NodeId s, NodeId t,
                          std::vector<std::size_t>* edge_arc) {
  constexpr std::uint32_t kInf = 1u << 30;
  Dinic d(2 * g.node_count());
  std::size_t pair_index = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const std::uint32_t cap = (v == s || v == t) ? kInf : 1;
    d.add_arc(2 * v, 2 * v + 1, cap);
    ++pair_index;
  }
  if (edge_arc) edge_arc->assign(g.link_count(), 0);
  // Add directed arcs u_out -> v_in for every directed link.
  for (LinkId l = 0; l < g.link_count(); ++l) {
    const NodeId u = g.link_source(l);
    const NodeId v = g.link_target(l);
    d.add_arc(2 * u + 1, 2 * v, 1);
    if (edge_arc) (*edge_arc)[l] = pair_index;
    ++pair_index;
  }
  return d;
}

}  // namespace

std::uint32_t max_node_disjoint_paths(const Graph& g, NodeId s, NodeId t) {
  require(s < g.node_count() && t < g.node_count() && s != t,
          "invalid s/t pair");
  Dinic d = build_split_network(g, s, t, nullptr);
  return d.max_flow(2 * s + 1, 2 * t);
}

std::vector<std::vector<NodeId>> node_disjoint_paths(const Graph& g, NodeId s,
                                                     NodeId t) {
  require(s < g.node_count() && t < g.node_count() && s != t,
          "invalid s/t pair");
  std::vector<std::size_t> edge_arc;
  Dinic d = build_split_network(g, s, t, &edge_arc);
  const std::uint32_t flow = d.max_flow(2 * s + 1, 2 * t);

  // next_hop[u] candidates: links carrying flow out of u.
  std::vector<std::vector<NodeId>> out_flow(g.node_count());
  for (LinkId l = 0; l < g.link_count(); ++l) {
    if (d.flow_on(edge_arc[l]) > 0) {
      // Cancel opposing unit flows on the same undirected edge: they can
      // arise from residual augmentation and would corrupt path walking.
      const LinkId r = g.reverse_link(l);
      if (r < l && d.flow_on(edge_arc[r]) > 0) continue;
      out_flow[g.link_source(l)].push_back(g.link_target(l));
    }
  }
  // Remove cancelled pairs: if both directions carry flow, drop both.
  for (NodeId u = 0; u < g.node_count(); ++u) {
    auto& outs = out_flow[u];
    for (auto it = outs.begin(); it != outs.end();) {
      const NodeId v = *it;
      auto back = std::find(out_flow[v].begin(), out_flow[v].end(), u);
      if (back != out_flow[v].end()) {
        out_flow[v].erase(back);
        it = outs.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::vector<std::vector<NodeId>> paths;
  paths.reserve(flow);
  for (std::uint32_t p = 0; p < flow; ++p) {
    std::vector<NodeId> path{s};
    NodeId cur = s;
    while (cur != t) {
      IHC_ENSURE(!out_flow[cur].empty(), "flow decomposition stuck");
      const NodeId nxt = out_flow[cur].back();
      out_flow[cur].pop_back();
      path.push_back(nxt);
      cur = nxt;
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

std::uint32_t vertex_connectivity(const Graph& g) {
  const NodeId n = g.node_count();
  if (n <= 1) return 0;
  if (!g.is_connected()) return 0;
  bool complete = true;
  for (NodeId v = 0; v < n && complete; ++v)
    complete = g.degree(v) == n - 1;
  if (complete) return n - 1;

  std::uint32_t best = n;  // upper bound
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (g.has_edge(u, v)) continue;
      best = std::min(best, max_node_disjoint_paths(g, u, v));
      if (best == 0) return 0;
    }
  }
  return best;
}

bool connectivity_at_least_sampled(const Graph& g, std::uint32_t k,
                                   std::size_t samples, SplitMix64& rng) {
  const NodeId n = g.node_count();
  if (n < 2) return false;
  auto check = [&](NodeId a, NodeId b) {
    return a == b || max_node_disjoint_paths(g, a, b) >= k;
  };
  // Deterministic anchors: node 0 against a spread of nodes.
  for (NodeId v : {NodeId{1}, n / 2, n - 1})
    if (!check(0, v)) return false;
  for (std::size_t i = 0; i < samples; ++i) {
    const auto a = static_cast<NodeId>(rng.below(n));
    const auto b = static_cast<NodeId>(rng.below(n));
    if (!check(a, b)) return false;
  }
  return true;
}

}  // namespace ihc
