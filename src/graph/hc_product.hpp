/// \file hc_product.hpp
/// \brief Combining Hamiltonian decompositions across Cartesian products -
/// the constructive engine behind Theorems 1 and 2, exposed generically.
///
/// If G decomposes into p edge-disjoint Hamiltonian cycles and H into q,
/// with |p - q| <= 1, then G x H decomposes into p + q edge-disjoint
/// Hamiltonian cycles: pair the factors' cycles via Lemma 1
/// (C_a x C_b -> 2 HCs) and absorb an odd leftover via Lemma 2
/// ((HC u HC) x C -> 3 HCs).  The paper uses this for hypercubes; the same
/// argument shows the whole class Lambda is closed under such products -
/// the basis of ProductTopology.
#pragma once

#include <vector>

#include "graph/cycle.hpp"
#include "graph/graph.hpp"

namespace ihc {

/// Combines decompositions of the product G x H, where G has `high`
/// cycles over vertices 0..|G|-1 and H has `low` cycles over vertices
/// 0..|H|-1.  Product vertex (g, h) has id g * low_count + h (matching
/// cartesian_product()).  Requires |high.size() - low.size()| <= 1 and at
/// least one cycle on each side.
[[nodiscard]] std::vector<Cycle> product_hamiltonian_cycles(
    const std::vector<Cycle>& high, const std::vector<Cycle>& low,
    NodeId low_count);

}  // namespace ihc
