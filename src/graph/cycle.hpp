/// \file cycle.hpp
/// \brief Simple cycles over graph nodes, and their directed traversals.
///
/// The IHC algorithm operates on directed Hamiltonian cycles HC_1..HC_gamma.
/// An undirected cycle is stored as a vertex sequence; DirectedCycle fixes a
/// traversal direction and provides the paper's next_j / prev_j / ID_j
/// operations in O(1) via a position index.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace ihc {

/// A simple cycle given as a vertex sequence (v_0, v_1, ..., v_{k-1}) with
/// the closing edge v_{k-1} -> v_0 implied.  Vertices must be distinct.
class Cycle {
 public:
  Cycle() = default;
  explicit Cycle(std::vector<NodeId> seq);

  [[nodiscard]] std::size_t length() const { return seq_.size(); }
  [[nodiscard]] const std::vector<NodeId>& nodes() const { return seq_; }
  [[nodiscard]] NodeId at(std::size_t i) const { return seq_[i]; }

  /// True when every consecutive pair (and the closing pair) is an edge of g.
  [[nodiscard]] bool lies_in(const Graph& g) const;

  /// True when the cycle visits every node of g exactly once.
  [[nodiscard]] bool is_hamiltonian(const Graph& g) const;

  /// The undirected edge ids used by this cycle, in traversal order.
  /// All consecutive pairs must be edges of g.
  [[nodiscard]] std::vector<EdgeId> edge_ids(const Graph& g) const;

 private:
  std::vector<NodeId> seq_;
};

/// A directed traversal of a cycle with O(1) next/prev/position queries.
/// Implements the paper's notation for a directed Hamiltonian cycle HC_j:
///   next(v)  — the node following v on HC_j,
///   prev(v)  — the node preceding v,
///   id(v)    — ID_j(v), the distance from the reference node N_0 to v
///              along HC_j (N_0 is the cycle's first vertex by convention).
class DirectedCycle {
 public:
  DirectedCycle() = default;

  /// \param cycle    the underlying vertex sequence
  /// \param reversed traverse the sequence backwards when true
  /// \param node_count number of nodes in the host graph (for the index)
  DirectedCycle(const Cycle& cycle, bool reversed, NodeId node_count);

  [[nodiscard]] std::size_t length() const { return order_.size(); }
  /// Vertex at distance i from N_0 along the traversal.
  [[nodiscard]] NodeId at(std::size_t i) const { return order_[i]; }
  [[nodiscard]] const std::vector<NodeId>& order() const { return order_; }

  /// True when v lies on this cycle (always true for Hamiltonian cycles).
  [[nodiscard]] bool contains(NodeId v) const {
    return position_[v] != kInvalidNode;
  }

  [[nodiscard]] NodeId next(NodeId v) const;
  [[nodiscard]] NodeId prev(NodeId v) const;
  /// ID_j(v): distance from N_0 to v along the traversal.
  [[nodiscard]] std::size_t id(NodeId v) const;

 private:
  std::vector<NodeId> order_;     // traversal order, order_[0] = N_0
  std::vector<NodeId> position_;  // node -> index in order_, or kInvalidNode
};

}  // namespace ihc
