/// \file torus_decomposition.hpp
/// \brief Lemma 1 (Foregger [11]): C_m x C_n decomposes into two
/// edge-disjoint Hamiltonian cycles.
///
/// Constructive realization: the torus C_m x C_n has the natural seed
/// 2-factorization {all row edges} + {all column edges} (m + n cycle
/// components in total); every unit square of the torus is an alternating
/// square for that pair, so the merge engine converges quickly.  The result
/// is verified before being returned.
#pragma once

#include <utility>
#include <vector>

#include "graph/cycle.hpp"
#include "graph/graph.hpp"

namespace ihc {

/// Builds the torus graph C_m x C_n with node (i, j) -> id i * n + j.
/// Requires m, n >= 3.
[[nodiscard]] Graph make_torus_graph(NodeId m, NodeId n);

/// Returns two edge-disjoint Hamiltonian cycles that partition the edges of
/// C_m x C_n (node ids as in make_torus_graph).  Deterministic for a given
/// (m, n, seed).
[[nodiscard]] std::vector<Cycle> torus_two_hamiltonian_cycles(
    NodeId m, NodeId n, std::uint64_t seed = 0x1ece5ee1u);

}  // namespace ihc
