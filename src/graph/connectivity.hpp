/// \file connectivity.hpp
/// \brief Vertex connectivity and Menger-style disjoint-path extraction.
///
/// The paper's reliability argument rests on Menger's theorem: a
/// gamma-connected graph has gamma internally node-disjoint paths between
/// any two nodes, and tolerating the maximum number of Byzantine nodes
/// requires delivering every message over gamma disjoint routes.  This
/// module provides the machinery to *verify* those claims for every
/// topology we construct: unit-capacity max-flow (Dinic) over the standard
/// node-split transformation, exact and sampled connectivity checks, and
/// extraction of the disjoint paths themselves.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ihc {

/// Maximum number of internally node-disjoint s-t paths (s != t).  For
/// adjacent s, t the direct edge counts as one path.
[[nodiscard]] std::uint32_t max_node_disjoint_paths(const Graph& g, NodeId s,
                                                    NodeId t);

/// Extracts a maximum set of internally node-disjoint s-t paths.  Each path
/// is a node sequence starting at s and ending at t.
[[nodiscard]] std::vector<std::vector<NodeId>> node_disjoint_paths(
    const Graph& g, NodeId s, NodeId t);

/// Exact vertex connectivity.  O(n^2) max-flow computations in the worst
/// case - intended for graphs with at most a few hundred nodes (tests).
/// Returns n-1 for complete graphs, 0 for disconnected graphs.
[[nodiscard]] std::uint32_t vertex_connectivity(const Graph& g);

/// Cheap probabilistic check that the connectivity is at least k: verifies
/// max_node_disjoint_paths >= k for `samples` random node pairs (plus a few
/// deterministic pairs).  Never reports a false positive about the sampled
/// pairs; may miss a violating pair not sampled.
[[nodiscard]] bool connectivity_at_least_sampled(const Graph& g,
                                                 std::uint32_t k,
                                                 std::size_t samples,
                                                 SplitMix64& rng);

}  // namespace ihc
