#include "graph/hc_cache.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace ihc {

std::string serialize_cycles(NodeId node_count,
                             const std::vector<Cycle>& cycles) {
  std::ostringstream out;
  out << "ihc-hc-v1 " << node_count << ' ' << cycles.size() << '\n';
  for (const Cycle& c : cycles) {
    out << c.length();
    for (const NodeId v : c.nodes()) out << ' ' << v;
    out << '\n';
  }
  return out.str();
}

ParsedCycles parse_cycles(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string magic;
  in >> magic;
  require(magic == "ihc-hc-v1", "not an ihc-hc-v1 document");
  ParsedCycles result;
  std::size_t cycle_count = 0;
  in >> result.node_count >> cycle_count;
  require(static_cast<bool>(in), "malformed header");
  for (std::size_t c = 0; c < cycle_count; ++c) {
    std::size_t len = 0;
    in >> len;
    require(static_cast<bool>(in) && len >= 3, "malformed cycle length");
    std::vector<NodeId> seq(len);
    for (auto& v : seq) {
      in >> v;
      require(static_cast<bool>(in), "truncated cycle");
      require(v < result.node_count, "vertex id out of range");
    }
    result.cycles.emplace_back(std::move(seq));  // validates distinctness
  }
  return result;
}

void save_cycles_file(const std::string& path, NodeId node_count,
                      const std::vector<Cycle>& cycles) {
  std::ofstream out(path);
  require(static_cast<bool>(out), "cannot open '" + path + "' for writing");
  out << serialize_cycles(node_count, cycles);
  require(static_cast<bool>(out), "write to '" + path + "' failed");
}

std::optional<ParsedCycles> load_cycles_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_cycles(buffer.str());
}

}  // namespace ihc
