/// \file two_factor.hpp
/// \brief Partition of a graph's edges into spanning 2-regular factors.
///
/// A FactorSet assigns every edge of a 2k-regular graph to one of k factors
/// such that each factor is a spanning 2-regular subgraph (a disjoint union
/// of cycles).  This is the working state of the Hamiltonian-decomposition
/// engine: seed constructions produce a FactorSet whose factors may have
/// many cycle components, and the engine's alternating-square swaps merge
/// them until every factor is a single Hamiltonian cycle.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "graph/cycle.hpp"
#include "graph/graph.hpp"

namespace ihc {

class FactorSet {
 public:
  /// \param g              host graph (must outlive the FactorSet)
  /// \param factor_count   number of factors k
  /// \param factor_of_edge factor index per EdgeId; every node must have
  ///                       exactly two incident edges in every factor
  FactorSet(const Graph& g, std::size_t factor_count,
            std::vector<std::uint8_t> factor_of_edge);

  [[nodiscard]] const Graph& graph() const { return *g_; }
  [[nodiscard]] std::size_t factor_count() const { return k_; }
  [[nodiscard]] std::uint8_t factor_of(EdgeId e) const {
    return factor_of_edge_[e];
  }

  /// The two edges of factor f incident to node v.
  [[nodiscard]] std::array<EdgeId, 2> incident(std::size_t f, NodeId v) const {
    return slots_[f * g_->node_count() + v];
  }

  /// For node v's factor-f edges, the two neighbors across them.
  [[nodiscard]] std::array<NodeId, 2> factor_neighbors(std::size_t f,
                                                       NodeId v) const;

  /// True when edge {u,v} exists and currently belongs to factor f.
  /// Returns the edge id via out parameter on success.
  [[nodiscard]] bool edge_in_factor(std::size_t f, NodeId u, NodeId v,
                                    EdgeId& out) const;

  /// Moves edge e from its current factor to factor f, updating slots.
  /// Only valid when the move preserves 2-regularity of both factors on its
  /// own; engine swaps should use swap_alternating_square() instead.
  void reassign(EdgeId e, std::uint8_t f);

  /// Applies the engine's move on the alternating square u-v-x-w-u:
  /// edges e_uv and e_xw currently in factor a, e_vx and e_wu in factor b;
  /// after the swap the memberships are exchanged.  Both factors remain
  /// 2-regular (this is a 2-opt on each factor).
  void swap_alternating_square(EdgeId e_uv, EdgeId e_vx, EdgeId e_xw,
                               EdgeId e_wu, NodeId u, NodeId v, NodeId x,
                               NodeId w);

  /// Component labels of factor f (label per node) and the component count.
  /// Recomputed on demand by the caller via label_components().
  std::uint32_t label_components(std::size_t f,
                                 std::vector<std::uint32_t>& labels) const;

  /// Extracts factor f as a list of cycles (vertex sequences).
  [[nodiscard]] std::vector<Cycle> extract_cycles(std::size_t f) const;

  /// Extracts factor f assuming it is a single cycle.
  [[nodiscard]] Cycle extract_single_cycle(std::size_t f) const;

 private:
  const Graph* g_;
  std::size_t k_;
  std::vector<std::uint8_t> factor_of_edge_;
  /// slots_[f * n + v] = the two factor-f edges at node v.
  std::vector<std::array<EdgeId, 2>> slots_;

  void slot_replace(std::size_t f, NodeId v, EdgeId from, EdgeId to);
  void slot_remove(std::size_t f, NodeId v, EdgeId e);
  void slot_add(std::size_t f, NodeId v, EdgeId e);
};

}  // namespace ihc
