#include "graph/export_dot.hpp"

#include <array>
#include <sstream>

#include "util/error.hpp"

namespace ihc {
namespace {
constexpr std::array<const char*, 8> kPalette = {
    "#D81B60", "#1E88E5", "#FFC107", "#004D40",
    "#8E24AA", "#43A047", "#F4511E", "#3949AB"};
}

std::string to_dot(const Graph& g, const std::string& name) {
  std::ostringstream out;
  out << "graph " << name << " {\n  node [shape=circle];\n";
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto [u, v] = g.edge(e);
    out << "  " << u << " -- " << v << ";\n";
  }
  out << "}\n";
  return out.str();
}

std::string decomposition_to_dot(const Graph& g,
                                 const std::vector<Cycle>& cycles,
                                 const std::string& name) {
  // Color per edge: index of the owning cycle, or -1.
  std::vector<int> owner(g.edge_count(), -1);
  for (std::size_t c = 0; c < cycles.size(); ++c)
    for (const EdgeId e : cycles[c].edge_ids(g))
      owner[e] = static_cast<int>(c);

  std::ostringstream out;
  out << "graph " << name << " {\n  node [shape=circle];\n";
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto [u, v] = g.edge(e);
    out << "  " << u << " -- " << v;
    if (owner[e] >= 0) {
      out << " [color=\""
          << kPalette[static_cast<std::size_t>(owner[e]) % kPalette.size()]
          << "\" penwidth=2]";
    } else {
      out << " [color=gray style=dashed]";
    }
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace ihc
