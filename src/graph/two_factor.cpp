#include "graph/two_factor.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ihc {

FactorSet::FactorSet(const Graph& g, std::size_t factor_count,
                     std::vector<std::uint8_t> factor_of_edge)
    : g_(&g), k_(factor_count), factor_of_edge_(std::move(factor_of_edge)) {
  require(factor_of_edge_.size() == g.edge_count(),
          "factor assignment size must equal edge count");
  require(k_ >= 1 && k_ <= 255, "factor count out of range");
  slots_.assign(k_ * g.node_count(), {kInvalidEdge, kInvalidEdge});
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const std::uint8_t f = factor_of_edge_[e];
    require(f < k_, "edge assigned to nonexistent factor");
    const auto [u, v] = g.edge(e);
    slot_add(f, u, e);
    slot_add(f, v, e);
  }
  // 2-regularity: every slot pair must be filled.
  for (std::size_t f = 0; f < k_; ++f) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const auto s = incident(f, v);
      require(s[0] != kInvalidEdge && s[1] != kInvalidEdge,
              "every node needs exactly two edges per factor");
    }
  }
}

std::array<NodeId, 2> FactorSet::factor_neighbors(std::size_t f,
                                                  NodeId v) const {
  const auto s = incident(f, v);
  std::array<NodeId, 2> out{};
  for (int i = 0; i < 2; ++i) {
    const auto [a, b] = g_->edge(s[static_cast<std::size_t>(i)]);
    out[static_cast<std::size_t>(i)] = (a == v) ? b : a;
  }
  return out;
}

bool FactorSet::edge_in_factor(std::size_t f, NodeId u, NodeId v,
                               EdgeId& out) const {
  const auto s = incident(f, u);
  for (const EdgeId e : s) {
    const auto [a, b] = g_->edge(e);
    if ((a == u && b == v) || (a == v && b == u)) {
      out = e;
      return true;
    }
  }
  return false;
}

void FactorSet::reassign(EdgeId e, std::uint8_t f) {
  const std::uint8_t old = factor_of_edge_[e];
  if (old == f) return;
  const auto [u, v] = g_->edge(e);
  slot_remove(old, u, e);
  slot_remove(old, v, e);
  factor_of_edge_[e] = f;
  slot_add(f, u, e);
  slot_add(f, v, e);
}

void FactorSet::swap_alternating_square(EdgeId e_uv, EdgeId e_vx, EdgeId e_xw,
                                        EdgeId e_wu, NodeId u, NodeId v,
                                        NodeId x, NodeId w) {
  const std::uint8_t a = factor_of_edge_[e_uv];
  const std::uint8_t b = factor_of_edge_[e_vx];
  IHC_ENSURE(factor_of_edge_[e_xw] == a && factor_of_edge_[e_wu] == b &&
                 a != b,
             "square is not alternating");
  factor_of_edge_[e_uv] = b;
  factor_of_edge_[e_xw] = b;
  factor_of_edge_[e_vx] = a;
  factor_of_edge_[e_wu] = a;
  // Each corner exchanges one edge between its a-slots and b-slots.
  slot_replace(a, u, e_uv, e_wu);
  slot_replace(b, u, e_wu, e_uv);
  slot_replace(a, v, e_uv, e_vx);
  slot_replace(b, v, e_vx, e_uv);
  slot_replace(a, x, e_xw, e_vx);
  slot_replace(b, x, e_vx, e_xw);
  slot_replace(a, w, e_xw, e_wu);
  slot_replace(b, w, e_wu, e_xw);
}

std::uint32_t FactorSet::label_components(
    std::size_t f, std::vector<std::uint32_t>& labels) const {
  const NodeId n = g_->node_count();
  labels.assign(n, static_cast<std::uint32_t>(-1));
  std::uint32_t count = 0;
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < n; ++start) {
    if (labels[start] != static_cast<std::uint32_t>(-1)) continue;
    labels[start] = count;
    stack.push_back(start);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const NodeId w : factor_neighbors(f, v)) {
        if (labels[w] == static_cast<std::uint32_t>(-1)) {
          labels[w] = count;
          stack.push_back(w);
        }
      }
    }
    ++count;
  }
  return count;
}

std::vector<Cycle> FactorSet::extract_cycles(std::size_t f) const {
  const NodeId n = g_->node_count();
  std::vector<bool> visited(n, false);
  std::vector<Cycle> out;
  for (NodeId start = 0; start < n; ++start) {
    if (visited[start]) continue;
    std::vector<NodeId> seq;
    NodeId prev = kInvalidNode;
    NodeId cur = start;
    do {
      visited[cur] = true;
      seq.push_back(cur);
      const auto nb = factor_neighbors(f, cur);
      const NodeId nxt = (nb[0] != prev) ? nb[0] : nb[1];
      prev = cur;
      cur = nxt;
    } while (cur != start);
    out.emplace_back(std::move(seq));
  }
  return out;
}

Cycle FactorSet::extract_single_cycle(std::size_t f) const {
  auto cycles = extract_cycles(f);
  IHC_ENSURE(cycles.size() == 1, "factor is not a single cycle");
  return std::move(cycles.front());
}

void FactorSet::slot_replace(std::size_t f, NodeId v, EdgeId from, EdgeId to) {
  auto& s = slots_[f * g_->node_count() + v];
  if (s[0] == from) {
    s[0] = to;
  } else {
    IHC_ENSURE(s[1] == from, "slot bookkeeping corrupted");
    s[1] = to;
  }
}

void FactorSet::slot_remove(std::size_t f, NodeId v, EdgeId e) {
  slot_replace(f, v, e, kInvalidEdge);
}

void FactorSet::slot_add(std::size_t f, NodeId v, EdgeId e) {
  auto& s = slots_[f * g_->node_count() + v];
  if (s[0] == kInvalidEdge) {
    s[0] = e;
  } else {
    require(s[1] == kInvalidEdge,
            "more than two edges of one factor at a node");
    s[1] = e;
  }
}

}  // namespace ihc
