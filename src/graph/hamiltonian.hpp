/// \file hamiltonian.hpp
/// \brief Verification of Hamiltonian cycles and edge-disjoint decompositions.
///
/// Condition LC2 of the paper's class Lambda requires gamma/2 undirected
/// edge-disjoint Hamiltonian cycles.  Every decomposition this library
/// constructs - whatever the construction path - is passed through
/// verify_hc_set() before use, so algorithmic correctness never depends on
/// the construction heuristics.
#pragma once

#include <string>
#include <vector>

#include "graph/cycle.hpp"
#include "graph/graph.hpp"

namespace ihc {

/// Outcome of a decomposition check; `ok` with an empty reason on success.
struct HcSetVerdict {
  bool ok = false;
  std::string reason;
};

/// Verifies that `cycles` are Hamiltonian cycles of g and pairwise
/// edge-disjoint.  When `must_cover_all_edges` is set, additionally checks
/// that the cycles partition E(g) exactly (true for even-degree members of
/// class Lambda; odd-degree graphs keep a perfect matching unused).
[[nodiscard]] HcSetVerdict verify_hc_set(const Graph& g,
                                         const std::vector<Cycle>& cycles,
                                         bool must_cover_all_edges);

/// Convenience wrapper that throws InvariantError when verification fails.
void ensure_hc_set(const Graph& g, const std::vector<Cycle>& cycles,
                   bool must_cover_all_edges);

}  // namespace ihc
