#include "graph/ham_search.hpp"

#include <algorithm>
#include <array>

#include "graph/decomposer.hpp"
#include "graph/hamiltonian.hpp"
#include "graph/two_factor.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ihc {

// --- independent certification -------------------------------------------

const char* to_string(CertFailure failure) {
  switch (failure) {
    case CertFailure::kNone: return "none";
    case CertFailure::kCycleCount: return "cycle_count";
    case CertFailure::kNotHamiltonian: return "not_hamiltonian";
    case CertFailure::kNonEdge: return "non_edge";
    case CertFailure::kSharedEdge: return "shared_edge";
    case CertFailure::kCoverage: return "coverage";
  }
  return "?";
}

Certificate certify_decomposition(const Graph& g,
                                  const std::vector<Cycle>& cycles,
                                  std::uint32_t gamma,
                                  bool must_cover_all_edges) {
  auto fail = [](CertFailure f, std::string detail) {
    return Certificate{false, f, std::move(detail)};
  };
  if (gamma == 0 || gamma % 2 != 0 || cycles.size() != gamma / 2) {
    return fail(CertFailure::kCycleCount,
                "gamma = " + std::to_string(gamma) + " requires " +
                    std::to_string(gamma / 2) + " cycle(s), got " +
                    std::to_string(cycles.size()));
  }
  std::vector<std::uint8_t> edge_seen(g.edge_count(), 0);
  std::size_t edges_used = 0;
  std::vector<std::uint8_t> node_seen(g.node_count(), 0);
  for (std::size_t c = 0; c < cycles.size(); ++c) {
    const std::vector<NodeId>& seq = cycles[c].nodes();
    if (seq.size() != g.node_count()) {
      return fail(CertFailure::kNotHamiltonian,
                  "cycle " + std::to_string(c) + " visits " +
                      std::to_string(seq.size()) + " of " +
                      std::to_string(g.node_count()) + " nodes");
    }
    std::fill(node_seen.begin(), node_seen.end(), 0);
    for (const NodeId v : seq) {
      if (v >= g.node_count() || node_seen[v]) {
        return fail(CertFailure::kNotHamiltonian,
                    "cycle " + std::to_string(c) +
                        " repeats or exceeds node " + std::to_string(v));
      }
      node_seen[v] = 1;
    }
    for (std::size_t i = 0; i < seq.size(); ++i) {
      const NodeId u = seq[i];
      const NodeId v = seq[(i + 1) % seq.size()];
      const EdgeId e = g.find_edge(u, v);
      if (e == kInvalidEdge) {
        return fail(CertFailure::kNonEdge,
                    "cycle " + std::to_string(c) + " steps over non-edge " +
                        std::to_string(u) + "-" + std::to_string(v));
      }
      if (edge_seen[e]) {
        return fail(CertFailure::kSharedEdge,
                    "edge " + std::to_string(u) + "-" + std::to_string(v) +
                        " used twice (second use in cycle " +
                        std::to_string(c) + ")");
      }
      edge_seen[e] = 1;
      ++edges_used;
    }
  }
  if (must_cover_all_edges && edges_used != g.edge_count()) {
    return fail(CertFailure::kCoverage,
                "cycles cover " + std::to_string(edges_used) + " of " +
                    std::to_string(g.edge_count()) +
                    " edges but gamma equals the degree");
  }
  // Cross-check against the library's original verifier: two independent
  // implementations must agree before anything is certified.
  const HcSetVerdict verdict =
      verify_hc_set(g, cycles, must_cover_all_edges);
  IHC_ENSURE(verdict.ok,
             "certify_decomposition and verify_hc_set disagree: " +
                 verdict.reason);
  return Certificate{true, CertFailure::kNone, {}};
}

// --- structural precheck --------------------------------------------------

LambdaStructure lambda_structure(const Graph& g) {
  LambdaStructure s;
  if (g.node_count() < 3) {
    s.refuted = true;
    s.detail = "fewer than 3 nodes admit no cycle";
    return s;
  }
  s.min_degree = g.degree(0);
  s.max_degree = g.degree(0);
  for (NodeId v = 1; v < g.node_count(); ++v) {
    s.min_degree = std::min(s.min_degree, g.degree(v));
    s.max_degree = std::max(s.max_degree, g.degree(v));
  }
  s.regular = s.min_degree == s.max_degree;
  if (!s.regular) {
    s.refuted = true;
    s.detail = "LC1 violated: graph is not regular (degree " +
               std::to_string(s.min_degree) + ".." +
               std::to_string(s.max_degree) + ")";
    return s;
  }
  s.degree = s.min_degree;
  s.connected = g.is_connected();
  if (!s.connected) {
    s.refuted = true;
    s.detail = "graph is disconnected; no Hamiltonian cycle exists";
    return s;
  }
  if (s.degree < 2) {
    s.refuted = true;
    s.detail = "degree " + std::to_string(s.degree) +
               " < 2 admits no Hamiltonian cycle";
    return s;
  }
  s.gamma = (s.degree / 2) * 2;
  return s;
}

namespace {

// --- exact stage ----------------------------------------------------------
//
// One-cycle-at-a-time backtracking.  Every cycle is rooted at node 0 (a
// Hamiltonian cycle passes through every node), oriented so its first
// step goes to the smaller-id neighbor of 0, and cycles are ordered by
// strictly increasing first step - the standard symmetry reductions, which
// preserve exhaustiveness.  Pruning per extension:
//   * degree bounds: every node must retain enough available edges for
//     its remaining obligations (2 per unbuilt cycle, plus enter/leave or
//     close duties in the cycle under construction);
//   * connectivity: the unvisited nodes plus the path endpoint and node 0
//     must stay connected through available edges;
//   * forced-edge propagation: while the endpoint has exactly one feasible
//     extension it is taken without opening a choice point.
class ExactSearcher {
 public:
  ExactSearcher(const Graph& g, std::uint32_t need, std::uint64_t step_limit)
      : g_(g),
        n_(g.node_count()),
        need_(need),
        step_limit_(step_limit),
        edge_avail_(g.edge_count(), 1),
        avail_(g.node_count(), 0),
        on_path_(g.node_count(), 0) {
    for (NodeId v = 0; v < n_; ++v) avail_[v] = g_.degree(v);
  }

  /// Runs the search.  Returns true when a full decomposition was found
  /// (cycles() holds it); false otherwise, with exhausted() telling
  /// whether the search space was covered completely.
  bool run() {
    found_ = next_cycle(0, /*min_first=*/0);
    return found_;
  }

  [[nodiscard]] std::vector<Cycle> cycles() const { return done_; }
  [[nodiscard]] bool exhausted() const { return !budget_hit_; }
  [[nodiscard]] std::uint64_t steps() const { return steps_; }

 private:
  bool consume(EdgeId e, NodeId u, NodeId v) {
    edge_avail_[e] = 0;
    --avail_[u];
    --avail_[v];
    return true;
  }
  void restore(EdgeId e, NodeId u, NodeId v) {
    edge_avail_[e] = 1;
    ++avail_[u];
    ++avail_[v];
  }

  /// Remaining-availability requirement of node w while cycle `c` is under
  /// construction with `rem_after` cycles still to build afterwards.
  [[nodiscard]] std::uint32_t requirement(NodeId w,
                                          std::uint32_t rem_after) const {
    const std::uint32_t later = 2 * rem_after;
    if (!on_path_[w]) return 2 + later;              // enter + leave
    if (w == path_.front() && path_.size() < n_) return 1 + later;  // close
    if (w == path_.back() && path_.size() < n_) return 1 + later;   // extend
    return later;
  }

  [[nodiscard]] bool degree_ok(NodeId w, std::uint32_t rem_after) const {
    return avail_[w] >= requirement(w, rem_after);
  }

  /// Unvisited nodes plus {endpoint, node 0} must be connected through
  /// available edges; otherwise the cycle can never be completed.
  [[nodiscard]] bool connectivity_ok() const {
    if (path_.size() >= n_) return true;
    scratch_.assign(n_, 0);
    stack_.clear();
    const NodeId seed = path_.back();
    scratch_[seed] = 1;
    stack_.push_back(seed);
    std::size_t reached = 0;
    std::size_t wanted = 2;  // endpoint + node 0
    for (NodeId w = 0; w < n_; ++w)
      if (!on_path_[w]) ++wanted;
    while (!stack_.empty()) {
      const NodeId u = stack_.back();
      stack_.pop_back();
      if (!on_path_[u] || u == path_.front() || u == path_.back())
        ++reached;
      for (const Adjacency& a : g_.neighbors(u)) {
        if (!edge_avail_[a.edge] || scratch_[a.neighbor]) continue;
        if (on_path_[a.neighbor] && a.neighbor != path_.front() &&
            a.neighbor != path_.back())
          continue;  // interior path nodes do not relay
        scratch_[a.neighbor] = 1;
        stack_.push_back(a.neighbor);
      }
    }
    return reached == wanted;
  }

  /// Starts (and recursively completes) cycle `c`; `min_first` is the
  /// symmetry bound: this cycle's first step must exceed the previous
  /// cycle's first step.
  bool next_cycle(std::uint32_t c, NodeId min_first) {
    if (c == need_) return true;
    const std::uint32_t rem_after = need_ - c - 1;
    for (const Adjacency& a : g_.neighbors(0)) {
      if (!edge_avail_[a.edge] || a.neighbor <= min_first) continue;
      if (budget_hit_) return false;
      path_.assign(1, NodeId{0});
      on_path_[0] = 1;
      consume(a.edge, 0, a.neighbor);
      path_.push_back(a.neighbor);
      on_path_[a.neighbor] = 1;
      if (degree_ok(0, rem_after) && degree_ok(a.neighbor, rem_after) &&
          connectivity_ok() && extend(c, rem_after)) {
        return true;
      }
      on_path_[a.neighbor] = 0;
      restore(a.edge, 0, a.neighbor);
      on_path_[0] = 0;
    }
    return false;
  }

  /// Extends the current cycle's path by one node (or closes it), trying
  /// every feasible candidate.  Forced-edge propagation: single-candidate
  /// extensions recurse without opening further choice points, which the
  /// call structure below gives naturally since the loop then has exactly
  /// one iteration.
  bool extend(std::uint32_t c, std::uint32_t rem_after) {
    if (++steps_ > step_limit_) {
      budget_hit_ = true;
      return false;
    }
    const NodeId u = path_.back();
    if (path_.size() == n_) return close(c, rem_after, u);
    for (const Adjacency& a : g_.neighbors(u)) {
      const NodeId v = a.neighbor;
      if (!edge_avail_[a.edge] || on_path_[v]) continue;
      if (budget_hit_) return false;
      consume(a.edge, u, v);
      path_.push_back(v);
      on_path_[v] = 1;
      const bool ok = degree_ok(u, rem_after) && degree_ok(v, rem_after) &&
                      degree_ok(0, rem_after) && connectivity_ok() &&
                      extend(c, rem_after);
      if (ok) return true;
      on_path_[v] = 0;
      path_.pop_back();
      restore(a.edge, u, v);
    }
    return false;
  }

  /// Closes the current path into a Hamiltonian cycle and recurses into
  /// the next cycle.
  bool close(std::uint32_t c, std::uint32_t rem_after, NodeId u) {
    if (path_[1] >= u) return false;  // orientation symmetry: first < last
    const EdgeId e = g_.find_edge(u, 0);
    if (e == kInvalidEdge || !edge_avail_[e]) return false;
    consume(e, u, 0);
    bool ok = true;
    for (NodeId w = 0; w < n_ && ok; ++w) ok = avail_[w] >= 2 * rem_after;
    if (ok) {
      done_.emplace_back(path_);
      std::vector<NodeId> saved_path = path_;
      std::fill(on_path_.begin(), on_path_.end(), 0);
      if (next_cycle(c + 1, saved_path[1])) return true;
      done_.pop_back();
      path_ = std::move(saved_path);
      for (const NodeId w : path_) on_path_[w] = 1;
    }
    restore(e, u, 0);
    return false;
  }

  const Graph& g_;
  NodeId n_;
  std::uint32_t need_;
  std::uint64_t step_limit_;
  std::vector<std::uint8_t> edge_avail_;
  std::vector<std::uint32_t> avail_;
  std::vector<std::uint8_t> on_path_;
  std::vector<NodeId> path_;
  std::vector<Cycle> done_;
  std::uint64_t steps_ = 0;
  bool budget_hit_ = false;
  bool found_ = false;
  mutable std::vector<std::uint8_t> scratch_;
  mutable std::vector<NodeId> stack_;
};

// --- heuristic stage: Posa rotation repair --------------------------------

/// Tries to extract one Hamiltonian cycle from the available subgraph by
/// randomized greedy extension with Posa rotations.  Returns the cycle's
/// vertex sequence, or empty on failure.
std::vector<NodeId> posa_cycle(const Graph& g,
                               const std::vector<std::uint8_t>& edge_avail,
                               SplitMix64& rng, std::size_t rotation_limit,
                               std::uint64_t& rotations) {
  const NodeId n = g.node_count();
  std::vector<NodeId> path;
  std::vector<std::uint32_t> pos(n, kInvalidNode);
  path.reserve(n);
  const auto start = static_cast<NodeId>(rng.below(n));
  path.push_back(start);
  pos[start] = 0;

  std::vector<NodeId> candidates;
  std::size_t rotated = 0;
  while (true) {
    const NodeId u = path.back();
    candidates.clear();
    for (const Adjacency& a : g.neighbors(u))
      if (edge_avail[a.edge] && pos[a.neighbor] == kInvalidNode)
        candidates.push_back(a.neighbor);
    if (!candidates.empty()) {
      const NodeId v = candidates[rng.below(candidates.size())];
      pos[v] = static_cast<std::uint32_t>(path.size());
      path.push_back(v);
      continue;
    }
    // Closing move: the path spans all nodes and the ends are adjacent.
    if (path.size() == n) {
      const EdgeId e = g.find_edge(u, path.front());
      if (e != kInvalidEdge && edge_avail[e]) return path;
    }
    // Rotation repair: pick an available neighbor v of u inside the path
    // and reverse the suffix after v, exposing a new endpoint.
    candidates.clear();
    for (const Adjacency& a : g.neighbors(u)) {
      if (!edge_avail[a.edge]) continue;
      const std::uint32_t i = pos[a.neighbor];
      if (i != kInvalidNode && i + 2 < path.size())
        candidates.push_back(a.neighbor);
    }
    if (candidates.empty() || ++rotated > rotation_limit) return {};
    ++rotations;
    const NodeId v = candidates[rng.below(candidates.size())];
    std::reverse(path.begin() + pos[v] + 1, path.end());
    for (std::uint32_t i = pos[v] + 1; i < path.size(); ++i) pos[path[i]] = i;
  }
}

/// If the available subgraph is spanning 2-regular, its components are
/// determined; returns the single Hamiltonian component, or empty.  This
/// is the end-game the rotation heuristic cannot handle (no degree-3 node
/// to rotate around).
std::vector<NodeId> trace_two_regular(
    const Graph& g, const std::vector<std::uint8_t>& edge_avail) {
  const NodeId n = g.node_count();
  for (NodeId v = 0; v < n; ++v) {
    std::uint32_t d = 0;
    for (const Adjacency& a : g.neighbors(v)) d += edge_avail[a.edge];
    if (d != 2) return {};
  }
  std::vector<NodeId> seq;
  seq.reserve(n);
  NodeId prev = kInvalidNode;
  NodeId u = 0;
  do {
    seq.push_back(u);
    NodeId next = kInvalidNode;
    for (const Adjacency& a : g.neighbors(u)) {
      if (edge_avail[a.edge] && a.neighbor != prev) {
        next = a.neighbor;
        break;
      }
    }
    if (next == kInvalidNode) {  // 2-cycle back over prev (multigraphs only)
      return {};
    }
    prev = u;
    u = next;
  } while (u != 0 && seq.size() <= n);
  return seq.size() == n ? seq : std::vector<NodeId>{};
}

void consume_cycle(const Graph& g, const std::vector<NodeId>& seq,
                   std::vector<std::uint8_t>& edge_avail) {
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const EdgeId e = g.find_edge(seq[i], seq[(i + 1) % seq.size()]);
    IHC_ENSURE(e != kInvalidEdge && edge_avail[e],
               "heuristic cycle uses an unavailable edge");
    edge_avail[e] = 0;
  }
}

/// One full heuristic attempt: extract `need` edge-disjoint cycles by
/// rotation repair (with the 2-regular end-game).  Empty result = failed.
std::vector<Cycle> posa_attempt(const Graph& g, std::uint32_t need,
                                SplitMix64& rng, std::size_t rotation_limit,
                                std::uint64_t& rotations) {
  std::vector<std::uint8_t> edge_avail(g.edge_count(), 1);
  std::vector<Cycle> cycles;
  for (std::uint32_t c = 0; c < need; ++c) {
    std::vector<NodeId> seq = trace_two_regular(g, edge_avail);
    if (seq.empty())
      seq = posa_cycle(g, edge_avail, rng, rotation_limit, rotations);
    if (seq.empty()) return {};
    consume_cycle(g, seq, edge_avail);
    cycles.emplace_back(std::move(seq));
  }
  return cycles;
}

// --- heuristic stage: Euler-split cycle-merge -----------------------------

/// Petersen's theorem, constructively: a connected 2k-regular graph has an
/// Euler circuit; orienting the edges along it yields a k-in/k-out
/// digraph, whose out/in bipartite graph is k-regular and therefore
/// splits into k perfect matchings; each matching is a spanning 2-factor.
/// The alternating-square merge engine (graph/decomposer.hpp) then merges
/// each factor's cycle components into one Hamiltonian cycle.
std::vector<Cycle> euler_split_merge(const Graph& g, std::uint32_t k,
                                     std::uint64_t seed) {
  const NodeId n = g.node_count();
  // Hierholzer's algorithm over edge ids.
  std::vector<std::uint32_t> next_slot(n, 0);
  std::vector<std::uint8_t> edge_done(g.edge_count(), 0);
  std::vector<NodeId> stack{0};
  std::vector<NodeId> circuit;
  circuit.reserve(g.edge_count() + 1);
  while (!stack.empty()) {
    const NodeId u = stack.back();
    const auto adj = g.neighbors(u);
    bool advanced = false;
    while (next_slot[u] < adj.size()) {
      const Adjacency& a = adj[next_slot[u]++];
      if (edge_done[a.edge]) continue;
      edge_done[a.edge] = 1;
      stack.push_back(a.neighbor);
      advanced = true;
      break;
    }
    if (!advanced) {
      circuit.push_back(u);
      stack.pop_back();
    }
  }
  IHC_ENSURE(circuit.size() == g.edge_count() + 1,
             "Euler circuit did not cover every edge");

  // Orientation per undirected edge: +1 when traversed u->v with u < v.
  // oriented[e] = source node of e's traversal.
  std::vector<NodeId> oriented(g.edge_count(), kInvalidNode);
  for (std::size_t i = 0; i + 1 < circuit.size(); ++i) {
    const EdgeId e = g.find_edge(circuit[i], circuit[i + 1]);
    oriented[e] = circuit[i];
  }

  // k rounds of Kuhn's augmenting-path matching on the out/in bipartite
  // graph; matched oriented edges of round r form 2-factor r.
  std::vector<std::uint8_t> factor_of_edge(g.edge_count(), 0);
  std::vector<std::uint8_t> edge_free(g.edge_count(), 1);
  for (std::uint32_t round = 0; round < k; ++round) {
    std::vector<EdgeId> match_in(n, kInvalidEdge);   // right node -> edge
    std::vector<EdgeId> match_out(n, kInvalidEdge);  // left node -> edge
    std::vector<std::uint8_t> visited(n, 0);
    // Augment from left node u: find an in-slot for one of u's free
    // out-edges, displacing existing matches recursively.
    auto augment = [&](auto&& self, NodeId u) -> bool {
      for (const Adjacency& a : g.neighbors(u)) {
        const EdgeId e = a.edge;
        if (!edge_free[e] || oriented[e] != u) continue;  // not an out-edge
        const NodeId v = a.neighbor;
        if (visited[v]) continue;
        visited[v] = 1;
        if (match_in[v] == kInvalidEdge ||
            self(self, oriented[match_in[v]])) {
          match_in[v] = e;
          match_out[u] = e;
          return true;
        }
      }
      return false;
    };
    for (NodeId u = 0; u < n; ++u) {
      if (match_out[u] != kInvalidEdge) continue;
      std::fill(visited.begin(), visited.end(), 0);
      IHC_ENSURE(augment(augment, u),
                 "regular bipartite graph must admit a perfect matching");
    }
    for (NodeId v = 0; v < n; ++v) {
      const EdgeId e = match_in[v];
      factor_of_edge[e] = static_cast<std::uint8_t>(round);
      edge_free[e] = 0;
    }
  }

  FactorSet factors(g, k, std::move(factor_of_edge));
  DecomposeOptions options;
  options.seed = seed;
  return merge_to_hamiltonian(std::move(factors), options);
}

// --- orchestration --------------------------------------------------------

/// Shared stage runner: exact backtracking, then Posa rotation repair,
/// then (when the needed cycles would partition a 2k-regular edge set)
/// the Euler-split merge.  Prechecks are the caller's job; `result` must
/// arrive with gamma already set.
void run_search_stages(const Graph& g, std::uint32_t need, bool must_cover,
                       const HamSearchOptions& options,
                       HamSearchResult& result) {
  auto certify_or_die = [&](std::vector<Cycle> cycles) {
    const Certificate cert =
        certify_decomposition(g, cycles, result.gamma, must_cover);
    IHC_ENSURE(cert.ok, "search produced an uncertifiable decomposition: " +
                            cert.detail);
    result.status = SearchStatus::kFound;
    result.cycles = std::move(cycles);
  };

  // Exact stage.
  const bool try_exact =
      options.mode == SearchMode::kExact ||
      (options.mode == SearchMode::kAuto &&
       g.node_count() <= options.exact_node_limit);
  if (try_exact) {
    ExactSearcher searcher(g, need, options.exact_step_limit);
    const bool found = searcher.run();
    result.stats.exact_steps = searcher.steps();
    if (found) {
      result.stats.exact = true;
      result.stats.exhausted = false;
      certify_or_die(searcher.cycles());
      return;
    }
    if (searcher.exhausted()) {
      result.stats.exhausted = true;
      result.status = SearchStatus::kRefuted;
      result.detail = "exhaustive backtracking found no set of " +
                      std::to_string(need) +
                      " edge-disjoint Hamiltonian cycles (" +
                      std::to_string(searcher.steps()) + " steps)";
      return;
    }
    if (options.mode == SearchMode::kExact) {
      result.status = SearchStatus::kUnknown;
      result.detail = "exact search exceeded its step budget (" +
                      std::to_string(options.exact_step_limit) +
                      " steps) without an answer";
      return;
    }
  }

  // Heuristic stage 1: Posa rotation repair.
  SplitMix64 rng(options.seed);
  const std::size_t rotation_limit =
      options.rotation_factor * g.node_count();
  for (std::size_t attempt = 0; attempt < options.heuristic_restarts;
       ++attempt) {
    result.stats.restarts = attempt + 1;
    std::vector<Cycle> cycles =
        posa_attempt(g, need, rng, rotation_limit, result.stats.rotations);
    if (!cycles.empty()) {
      certify_or_die(std::move(cycles));
      return;
    }
  }

  // Heuristic stage 2: Euler-split 2-factorization + alternating-square
  // cycle merge.  Only applicable when the needed cycles use every edge of
  // an even-regular graph (Petersen's theorem needs 2k-regularity).
  if (must_cover) {  // must_cover implies 2k-regularity here
    try {
      std::vector<Cycle> cycles =
          euler_split_merge(g, need, options.seed);
      result.stats.cycle_merge = true;
      certify_or_die(std::move(cycles));
      return;
    } catch (const InvariantError&) {
      // The merge engine's contract: failure to converge means "this seed
      // factorization was unsuitable" - for an automated search that is a
      // give-up, not a refutation.
    }
  }

  result.status = SearchStatus::kUnknown;
  result.detail = "heuristics gave up after " +
                  std::to_string(result.stats.restarts) + " restarts (" +
                  std::to_string(result.stats.rotations) +
                  " rotations); existence undecided";
  return;
}

}  // namespace

HamSearchResult search_hamiltonian_decomposition(
    const Graph& g, std::uint32_t cycles_needed,
    const HamSearchOptions& options) {
  HamSearchResult result;
  const LambdaStructure structure = lambda_structure(g);
  if (structure.refuted) {
    result.status = SearchStatus::kRefuted;
    result.detail = structure.detail;
    return result;
  }
  const std::uint32_t need =
      cycles_needed != 0 ? cycles_needed : structure.gamma / 2;
  require(need >= 1, "cycles_needed must be at least 1");
  result.gamma = 2 * need;
  if (result.gamma > structure.degree) {
    result.status = SearchStatus::kRefuted;
    result.detail = std::to_string(need) +
                    " edge-disjoint Hamiltonian cycles need degree >= " +
                    std::to_string(result.gamma) + "; graph has " +
                    std::to_string(structure.degree);
    return result;
  }
  // must_cover == (gamma == degree), so the covered edge set is
  // 2k-regular whenever the Euler-split stage engages.
  run_search_stages(g, need, result.gamma == structure.degree, options,
                    result);
  return result;
}

HamSearchResult search_hamiltonian_cycles(const Graph& g,
                                          std::uint32_t cycles_needed,
                                          const HamSearchOptions& options) {
  require(cycles_needed >= 1, "cycles_needed must be at least 1");
  HamSearchResult result;
  result.gamma = 2 * cycles_needed;
  if (g.node_count() < 3) {
    result.status = SearchStatus::kRefuted;
    result.detail = "fewer than 3 nodes admit no cycle";
    return result;
  }
  std::uint32_t min_degree = g.degree(0);
  std::uint32_t max_degree = g.degree(0);
  for (NodeId v = 1; v < g.node_count(); ++v) {
    min_degree = std::min(min_degree, g.degree(v));
    max_degree = std::max(max_degree, g.degree(v));
  }
  if (min_degree < result.gamma) {
    result.status = SearchStatus::kRefuted;
    result.detail = std::to_string(cycles_needed) +
                    " edge-disjoint Hamiltonian cycles need minimum degree "
                    ">= " +
                    std::to_string(result.gamma) + "; graph has " +
                    std::to_string(min_degree);
    return result;
  }
  if (!g.is_connected()) {
    result.status = SearchStatus::kRefuted;
    result.detail = "graph is disconnected; no Hamiltonian cycle exists";
    return result;
  }
  // Full edge coverage is only demanded (and only possible) when the
  // graph happens to be 2k-regular - the irregular survivor subgraphs
  // this entry exists for leave edges unused by design.
  const bool must_cover =
      min_degree == max_degree && result.gamma == min_degree;
  run_search_stages(g, cycles_needed, must_cover, options, result);
  return result;
}

}  // namespace ihc
