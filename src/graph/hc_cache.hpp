/// \file hc_cache.hpp
/// \brief Serialization of Hamiltonian-cycle sets.
///
/// The paper notes the hypercube decomposition "only needs to be done once
/// for a given size hypercube"; this module lets users persist a computed
/// decomposition and reload it on later runs (or ship it with a deployment
/// where the construction engine is unwanted).  The format is a plain text
/// document:
///
///   ihc-hc-v1 <node_count> <cycle_count>
///   <cycle length> <v0> <v1> ... per cycle, one line each
///
/// Loading validates the structure; callers should additionally run
/// verify_hc_set() against their graph, as everywhere else.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/cycle.hpp"

namespace ihc {

/// Serializes a cycle set (with the host node count for validation).
[[nodiscard]] std::string serialize_cycles(NodeId node_count,
                                           const std::vector<Cycle>& cycles);

/// Parses a serialized cycle set; throws ConfigError on malformed input
/// (wrong magic, counts, duplicate vertices, ...).
struct ParsedCycles {
  NodeId node_count = 0;
  std::vector<Cycle> cycles;
};
[[nodiscard]] ParsedCycles parse_cycles(std::string_view text);

/// Convenience file wrappers.  load returns nullopt when the file does
/// not exist; parse failures still throw.
void save_cycles_file(const std::string& path, NodeId node_count,
                      const std::vector<Cycle>& cycles);
[[nodiscard]] std::optional<ParsedCycles> load_cycles_file(
    const std::string& path);

}  // namespace ihc
