#include "graph/lemma2.hpp"

#include "graph/decomposer.hpp"
#include "graph/hamiltonian.hpp"
#include "util/error.hpp"

namespace ihc {

std::vector<Cycle> lemma2_three_hamiltonian_cycles(const Cycle& h1,
                                                   const Cycle& h2, NodeId r,
                                                   std::uint64_t seed) {
  const auto p = static_cast<NodeId>(h1.length());
  require(h2.length() == p, "h1 and h2 must span the same vertex set");
  require(p >= 3 && r >= 3, "lemma 2 requires p, r >= 3");

  auto id = [r](NodeId v, NodeId layer) { return v * r + layer; };

  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<std::uint8_t> assignment;
  edges.reserve(static_cast<std::size_t>(3) * p * r);
  assignment.reserve(edges.capacity());

  for (int which = 0; which < 2; ++which) {
    const Cycle& h = (which == 0) ? h1 : h2;
    for (std::size_t i = 0; i < h.length(); ++i) {
      const NodeId a = h.at(i);
      const NodeId b = h.at((i + 1) % h.length());
      require(a < p && b < p, "cycle vertices must be 0..p-1");
      for (NodeId layer = 0; layer < r; ++layer) {
        edges.emplace_back(id(a, layer), id(b, layer));
        assignment.push_back(static_cast<std::uint8_t>(which));
      }
    }
  }
  for (NodeId v = 0; v < p; ++v) {
    for (NodeId layer = 0; layer < r; ++layer) {
      edges.emplace_back(id(v, layer), id(v, (layer + 1) % r));
      assignment.push_back(2);
    }
  }

  Graph g(p * r, std::move(edges));
  DecomposeOptions options;
  options.seed = seed;
  std::vector<Cycle> cycles =
      merge_to_hamiltonian(FactorSet(g, 3, std::move(assignment)), options);
  ensure_hc_set(g, cycles, /*must_cover_all_edges=*/true);
  return cycles;
}

}  // namespace ihc
