#include "graph/hamiltonian.hpp"

#include "util/error.hpp"

namespace ihc {

HcSetVerdict verify_hc_set(const Graph& g, const std::vector<Cycle>& cycles,
                           bool must_cover_all_edges) {
  std::vector<bool> used(g.edge_count(), false);
  std::size_t used_count = 0;
  for (std::size_t c = 0; c < cycles.size(); ++c) {
    const Cycle& cycle = cycles[c];
    if (cycle.length() != g.node_count()) {
      return {false, "cycle " + std::to_string(c) + " has length " +
                         std::to_string(cycle.length()) + ", expected " +
                         std::to_string(g.node_count())};
    }
    if (!cycle.lies_in(g)) {
      return {false, "cycle " + std::to_string(c) +
                         " uses a non-edge of the graph"};
    }
    for (EdgeId e : cycle.edge_ids(g)) {
      if (used[e]) {
        return {false, "edge " + std::to_string(e) +
                           " reused by cycle " + std::to_string(c)};
      }
      used[e] = true;
      ++used_count;
    }
  }
  if (must_cover_all_edges && used_count != g.edge_count()) {
    return {false, "cycles cover " + std::to_string(used_count) + " of " +
                       std::to_string(g.edge_count()) + " edges"};
  }
  return {true, {}};
}

void ensure_hc_set(const Graph& g, const std::vector<Cycle>& cycles,
                   bool must_cover_all_edges) {
  const HcSetVerdict v = verify_hc_set(g, cycles, must_cover_all_edges);
  IHC_ENSURE(v.ok, v.reason);
}

}  // namespace ihc
