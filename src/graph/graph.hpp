/// \file graph.hpp
/// \brief Compact undirected graph with stable edge identifiers.
///
/// All interconnection topologies in the library (hypercubes, tori, hex
/// meshes, circulants) are instances of this structure.  The graph is built
/// once from an edge list and is immutable afterwards; adjacency is stored
/// in CSR form with each adjacency entry carrying the undirected edge id, so
/// higher layers (Hamiltonian decomposition, schedules, the simulator) can
/// key per-edge state off dense arrays.
///
/// Directed links: every undirected edge {u,v} corresponds to two directed
/// links u->v and v->u.  A directed link is identified by the index of the
/// (u, v) entry inside the CSR adjacency array, giving a dense id space of
/// size 2 * edge_count() that the simulator uses for transmitter state.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace ihc {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;
/// Dense id of a directed link (an orientation of an undirected edge).
using LinkId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);
inline constexpr LinkId kInvalidLink = static_cast<LinkId>(-1);

/// One adjacency entry: the neighbor and the undirected edge id connecting
/// to it.
struct Adjacency {
  NodeId neighbor;
  EdgeId edge;
};

/// Immutable undirected simple graph.
class Graph {
 public:
  /// Builds a graph from an explicit edge list.  Self-loops and duplicate
  /// edges are rejected (ConfigError).  Edge ids are assigned in list order.
  Graph(NodeId node_count, std::vector<std::pair<NodeId, NodeId>> edges);

  [[nodiscard]] NodeId node_count() const { return node_count_; }
  [[nodiscard]] EdgeId edge_count() const {
    return static_cast<EdgeId>(edges_.size());
  }
  /// Number of directed links (= 2 * edge_count()).
  [[nodiscard]] LinkId link_count() const {
    return static_cast<LinkId>(2 * edges_.size());
  }

  /// Endpoints of an undirected edge, as given at construction (u, v).
  [[nodiscard]] std::pair<NodeId, NodeId> edge(EdgeId e) const {
    return edges_[e];
  }

  /// Neighbors of v with their edge ids.
  [[nodiscard]] std::span<const Adjacency> neighbors(NodeId v) const {
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  [[nodiscard]] std::uint32_t degree(NodeId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// True when every node has the same degree; that degree is returned via
  /// regular_degree() (0 for the empty graph).
  [[nodiscard]] bool is_regular() const;
  [[nodiscard]] std::uint32_t regular_degree() const;

  /// Undirected edge id between u and v, or kInvalidEdge when absent.
  [[nodiscard]] EdgeId find_edge(NodeId u, NodeId v) const;
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const {
    return find_edge(u, v) != kInvalidEdge;
  }

  /// Dense id of the directed link u->v; u and v must be adjacent.
  [[nodiscard]] LinkId link(NodeId u, NodeId v) const;

  /// Source node of a directed link.
  [[nodiscard]] NodeId link_source(LinkId l) const { return link_src_[l]; }
  /// Destination node of a directed link.
  [[nodiscard]] NodeId link_target(LinkId l) const {
    return adj_[l].neighbor;
  }
  /// Undirected edge underlying a directed link.
  [[nodiscard]] EdgeId link_edge(LinkId l) const { return adj_[l].edge; }
  /// The oppositely-directed link over the same undirected edge.
  [[nodiscard]] LinkId reverse_link(LinkId l) const {
    return link(link_target(l), link_source(l));
  }

  /// True when the graph is connected (the empty graph is connected).
  [[nodiscard]] bool is_connected() const;

 private:
  NodeId node_count_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
  std::vector<std::uint32_t> offsets_;  // size node_count_ + 1
  std::vector<Adjacency> adj_;          // size 2 * edges_
  std::vector<NodeId> link_src_;        // source node per adjacency slot
};

/// Convenience: builds the cycle graph C_n (n >= 3).
[[nodiscard]] Graph make_cycle_graph(NodeId n);

/// Convenience: builds the complete graph K_n.
[[nodiscard]] Graph make_complete_graph(NodeId n);

/// Cartesian product G x H: vertices (g, h) with id g * H.node_count() + h;
/// (g,h)-(g',h) is an edge iff g-g' in G, and (g,h)-(g,h') iff h-h' in H.
[[nodiscard]] Graph cartesian_product(const Graph& g, const Graph& h);

}  // namespace ihc
