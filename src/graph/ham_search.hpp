/// \file ham_search.hpp
/// \brief Automated Hamiltonian-decomposition search: class-Lambda
/// membership as a computed property instead of a hand-coded one.
///
/// The paper defines class Lambda structurally - a gamma-regular graph
/// carrying gamma/2 edge-disjoint Hamiltonian cycles - and exhibits the
/// decompositions for hypercubes, square meshes and hex meshes by
/// construction.  Related work shows the class is much richer (twisted
/// cubes, k-ary n-tori, circulants, ...); this module lets a topology
/// supply *only its adjacency* and finds (or refutes) the decomposition:
///
///   1. structural precheck: regularity, even gamma, connectivity - the
///      cheap LC1-side refutations;
///   2. exact stage (small N): one-cycle-at-a-time backtracking with
///      degree-bound pruning, connectivity pruning and forced-edge
///      propagation, exhaustive within a step budget - so a completed
///      exact search that finds nothing is a *refutation*;
///   3. heuristic stage (large N, or exact budget exhausted): Posa
///      rotation repair per cycle, falling back to cycle-merge - an
///      Euler-split 2-factorization (Petersen's theorem) merged to
///      Hamiltonian cycles by the alternating-square engine
///      (graph/decomposer.hpp).  A heuristic failure is "unknown", never
///      a refutation.
///
/// Every found decomposition is certified by an independent verifier
/// (certify_decomposition) before being returned, so search bugs cannot
/// produce invalid IHC schedules - they can only fail loudly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/cycle.hpp"
#include "graph/graph.hpp"

namespace ihc {

// --- independent certification -------------------------------------------

/// Specific failure classes of a decomposition check, for diagnostics and
/// for the adversarial tests that feed hand-corrupted decompositions.
enum class CertFailure {
  kNone,            ///< certified
  kCycleCount,      ///< wrong number of cycles for the claimed gamma
  kNotHamiltonian,  ///< a cycle misses nodes or repeats one
  kNonEdge,         ///< a cycle step is not an edge of the graph
  kSharedEdge,      ///< two cycles (or one cycle twice) use the same edge
  kCoverage,        ///< cycles must partition E(g) but leave edges unused
};

[[nodiscard]] const char* to_string(CertFailure failure);

/// Verdict of the independent verifier.
struct Certificate {
  bool ok = false;
  CertFailure failure = CertFailure::kNone;
  std::string detail;  ///< one-line diagnostic naming the offending cycle
};

/// Independently certifies that `cycles` is a valid Lambda decomposition
/// of g for the claimed gamma: exactly gamma/2 cycles, each a Hamiltonian
/// cycle of g, pairwise edge-disjoint, and - when `must_cover_all_edges`
/// (gamma == degree) - partitioning E(g) exactly.  The implementation is
/// deliberately separate from the search engine's bookkeeping AND is
/// cross-checked against graph/hamiltonian.hpp's verify_hc_set, so a bug
/// in either cannot certify an invalid schedule.
[[nodiscard]] Certificate certify_decomposition(
    const Graph& g, const std::vector<Cycle>& cycles, std::uint32_t gamma,
    bool must_cover_all_edges);

// --- structural precheck --------------------------------------------------

/// LC1-side structure of a candidate graph: the broadcast connectivity
/// gamma it could support (largest even integer <= degree) and the cheap
/// refutations that need no search at all.
struct LambdaStructure {
  bool regular = false;
  bool connected = false;
  std::uint32_t degree = 0;      ///< regular degree (0 when irregular)
  std::uint32_t min_degree = 0;  ///< for the irregular diagnostic
  std::uint32_t max_degree = 0;
  std::uint32_t gamma = 0;       ///< 2 * floor(degree / 2); 0 when refuted
  bool refuted = false;          ///< no decomposition can exist
  std::string detail;            ///< refutation reason, if any
};

[[nodiscard]] LambdaStructure lambda_structure(const Graph& g);

// --- search ---------------------------------------------------------------

enum class SearchMode {
  kAuto,       ///< exact within limits, then heuristic
  kExact,      ///< backtracking only (refutes when exhaustive)
  kHeuristic,  ///< rotation repair + cycle-merge only
};

enum class SearchStatus {
  kFound,    ///< certified decomposition attached
  kRefuted,  ///< proven impossible (structure, or exhausted exact search)
  kUnknown,  ///< heuristics gave up; existence undecided
};

struct HamSearchOptions {
  SearchMode mode = SearchMode::kAuto;
  /// kAuto runs the exact stage only on graphs of at most this many nodes.
  NodeId exact_node_limit = 40;
  /// Backtracking extensions before the exact stage gives up.  An exact
  /// search that terminates *within* the budget without finding a
  /// decomposition is exhaustive, hence a refutation; exceeding the budget
  /// falls through to the heuristic stage (kAuto) or returns kUnknown.
  std::uint64_t exact_step_limit = 2'000'000;
  std::uint64_t seed = 0x2005eed5u;     ///< heuristic tie-breaking
  std::size_t heuristic_restarts = 24;  ///< Posa restarts per cycle
  /// Rotations allowed per Posa attempt, as a multiple of node count.
  std::size_t rotation_factor = 64;
};

struct HamSearchStats {
  std::uint64_t exact_steps = 0;  ///< backtracking extensions performed
  std::uint64_t rotations = 0;    ///< Posa rotations performed
  std::size_t restarts = 0;       ///< heuristic restarts consumed
  bool exact = false;             ///< decomposition came from the exact stage
  bool exhausted = false;         ///< exact stage completed exhaustively
  bool cycle_merge = false;       ///< Euler-split + merge produced the result
};

struct HamSearchResult {
  SearchStatus status = SearchStatus::kUnknown;
  std::uint32_t gamma = 0;     ///< the gamma the cycles (would) support
  std::vector<Cycle> cycles;   ///< certified decomposition when kFound
  std::string detail;          ///< refutation reason / give-up note
  HamSearchStats stats;
};

/// Searches for `cycles_needed` edge-disjoint Hamiltonian cycles of g.
/// When cycles_needed is 0 it defaults to floor(degree/2), the most the
/// graph's regularity admits (gamma = 2 * cycles_needed).  The returned
/// cycles - whatever stage produced them - have passed
/// certify_decomposition; an invalid internal result throws
/// InvariantError instead of being returned.
[[nodiscard]] HamSearchResult search_hamiltonian_decomposition(
    const Graph& g, std::uint32_t cycles_needed = 0,
    const HamSearchOptions& options = {});

/// Searches for `cycles_needed` edge-disjoint Hamiltonian cycles of a
/// graph that need NOT be regular.  Class-Lambda membership requires
/// regularity (LC1), but the adaptive-recovery re-rooting stage
/// (core/retransmit) searches the *survivor* subgraph of a faulted
/// topology, which is almost never regular - so this entry skips the
/// LC1 refutation and runs the same exact + Posa stages (the Euler-split
/// merge needs 2k-regular full coverage and only engages when the graph
/// happens to satisfy it).  cycles_needed must be >= 1; structural
/// refutations (disconnected, min degree < 2 * cycles_needed) still
/// return kRefuted, and every found cycle set has passed
/// certify_decomposition / verify_hc_set.
[[nodiscard]] HamSearchResult search_hamiltonian_cycles(
    const Graph& g, std::uint32_t cycles_needed,
    const HamSearchOptions& options = {});

}  // namespace ihc
