/// \file decomposer.hpp
/// \brief Engine that turns a seed 2-factorization into a Hamiltonian
/// decomposition by alternating-square swaps.
///
/// The paper (Section III) establishes that hypercubes, torus-wrapped square
/// meshes, and C-wrapped hex meshes possess gamma/2 edge-disjoint
/// Hamiltonian cycles, citing the constructive lemmas of Foregger [11] and
/// Aubert-Schneider [2].  Those constructions are inductive and, in the
/// authors' words, "clearly a tedious process".  This module implements the
/// constructive substitute used throughout the library:
///
///   1. start from a *seed* 2-factorization of the graph (rows+columns for
///      a torus, paired dimensions for a hypercube, layers+verticals for
///      the Lemma-2 product), in which every factor is a disjoint union of
///      cycles;
///   2. repeatedly swap *alternating squares* - 4-cycles u-v-x-w whose
///      edges alternate between two factors a and b.  Such a swap is a
///      2-opt on each factor: when the two a-edges lie in different cycle
///      components of a, the swap merges them (and symmetrically for b);
///   3. stop when every factor is a single (Hamiltonian) cycle.
///
/// The search is greedy with deterministic seeding: double-merge squares
/// are applied eagerly, single-merge squares are accepted when the other
/// factor does not split, and a bounded randomized plateau walk escapes
/// rare stalls.  The result is always machine-verified by the caller
/// (verify_hc_set), so the heuristic can never produce a wrong
/// decomposition, only fail loudly.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/cycle.hpp"
#include "graph/two_factor.hpp"

namespace ihc {

struct DecomposeOptions {
  std::uint64_t seed = 0x1ece5ee1u;  ///< RNG seed for tie-breaking/plateaus.
  std::size_t max_retries = 16;      ///< Restarts with reseeded RNG.
  /// Plateau moves allowed between strict improvements before giving up on
  /// the current attempt, as a multiple of node count.
  std::size_t plateau_factor = 64;
};

struct DecomposeStats {
  std::size_t swaps = 0;          ///< Accepted swaps in the winning attempt.
  std::size_t plateau_moves = 0;  ///< Non-improving accepted swaps.
  std::size_t retries = 0;        ///< Attempts restarted before success.
};

/// Runs the merge engine until every factor of `factors` is one Hamiltonian
/// cycle; returns the cycles (factor order preserved).  Throws
/// InvariantError when no attempt converges - callers treat that as "this
/// seed factorization was unsuitable", which for the topologies in this
/// library indicates a bug.
[[nodiscard]] std::vector<Cycle> merge_to_hamiltonian(
    FactorSet factors, const DecomposeOptions& options = {},
    DecomposeStats* stats = nullptr);

}  // namespace ihc
