/// \file export_dot.hpp
/// \brief Graphviz (DOT) export of graphs, Hamiltonian decompositions and
/// channel dependency graphs - the repository's figures pipeline.
#pragma once

#include <string>
#include <vector>

#include "graph/cycle.hpp"
#include "graph/graph.hpp"

namespace ihc {

/// Plain graph: `graph G { ... }` with one line per edge.
[[nodiscard]] std::string to_dot(const Graph& g,
                                 const std::string& name = "G");

/// Graph with its Hamiltonian decomposition: each cycle's edges share a
/// color (Fig. 3 of the paper, for any topology).  Edges outside every
/// cycle (the unused matching of odd hypercubes) are drawn dashed gray.
[[nodiscard]] std::string decomposition_to_dot(
    const Graph& g, const std::vector<Cycle>& cycles,
    const std::string& name = "G");

}  // namespace ihc
