#include "graph/graph.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "util/error.hpp"

namespace ihc {

Graph::Graph(NodeId node_count, std::vector<std::pair<NodeId, NodeId>> edges)
    : node_count_(node_count), edges_(std::move(edges)) {
  // Validate the edge list.
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(edges_.size() * 2);
  for (auto& [u, v] : edges_) {
    require(u < node_count_ && v < node_count_, "edge endpoint out of range");
    require(u != v, "self-loops are not allowed");
    const std::uint64_t key = (static_cast<std::uint64_t>(std::min(u, v))
                               << 32) |
                              std::max(u, v);
    require(seen.insert(key).second, "duplicate edge in edge list");
  }

  // CSR construction.
  offsets_.assign(node_count_ + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++offsets_[u + 1];
    ++offsets_[v + 1];
  }
  std::partial_sum(offsets_.begin(), offsets_.end(), offsets_.begin());
  adj_.resize(2 * edges_.size());
  link_src_.resize(2 * edges_.size());
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    const auto [u, v] = edges_[e];
    adj_[cursor[u]] = Adjacency{v, e};
    link_src_[cursor[u]++] = u;
    adj_[cursor[v]] = Adjacency{u, e};
    link_src_[cursor[v]++] = v;
  }
  // Sort each adjacency list by neighbor for deterministic iteration and
  // binary-searchable link lookup.
  for (NodeId v = 0; v < node_count_; ++v) {
    std::sort(adj_.begin() + offsets_[v], adj_.begin() + offsets_[v + 1],
              [](const Adjacency& a, const Adjacency& b) {
                return a.neighbor < b.neighbor;
              });
  }
}

bool Graph::is_regular() const {
  if (node_count_ == 0) return true;
  const auto d = degree(0);
  for (NodeId v = 1; v < node_count_; ++v)
    if (degree(v) != d) return false;
  return true;
}

std::uint32_t Graph::regular_degree() const {
  IHC_ENSURE(is_regular(), "graph is not regular");
  return node_count_ == 0 ? 0u : degree(0);
}

EdgeId Graph::find_edge(NodeId u, NodeId v) const {
  const auto nbrs = neighbors(u);
  auto it = std::lower_bound(
      nbrs.begin(), nbrs.end(), v,
      [](const Adjacency& a, NodeId target) { return a.neighbor < target; });
  if (it != nbrs.end() && it->neighbor == v) return it->edge;
  return kInvalidEdge;
}

LinkId Graph::link(NodeId u, NodeId v) const {
  const auto nbrs = neighbors(u);
  auto it = std::lower_bound(
      nbrs.begin(), nbrs.end(), v,
      [](const Adjacency& a, NodeId target) { return a.neighbor < target; });
  IHC_ENSURE(it != nbrs.end() && it->neighbor == v,
             "link() requires adjacent nodes");
  return static_cast<LinkId>(&*it - adj_.data());
}

bool Graph::is_connected() const {
  if (node_count_ == 0) return true;
  std::vector<bool> visited(node_count_, false);
  std::vector<NodeId> stack{0};
  visited[0] = true;
  NodeId reached = 1;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (const auto& a : neighbors(v)) {
      if (!visited[a.neighbor]) {
        visited[a.neighbor] = true;
        ++reached;
        stack.push_back(a.neighbor);
      }
    }
  }
  return reached == node_count_;
}

Graph make_cycle_graph(NodeId n) {
  require(n >= 3, "a cycle graph needs at least 3 nodes");
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(n);
  for (NodeId i = 0; i < n; ++i) edges.emplace_back(i, (i + 1) % n);
  return Graph(n, std::move(edges));
}

Graph make_complete_graph(NodeId n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  return Graph(n, std::move(edges));
}

Graph cartesian_product(const Graph& g, const Graph& h) {
  const NodeId nh = h.node_count();
  const NodeId n = g.node_count() * nh;
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(g.edge_count()) * nh +
                static_cast<std::size_t>(h.edge_count()) * g.node_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto [a, b] = g.edge(e);
    for (NodeId y = 0; y < nh; ++y)
      edges.emplace_back(a * nh + y, b * nh + y);
  }
  for (NodeId x = 0; x < g.node_count(); ++x) {
    for (EdgeId e = 0; e < h.edge_count(); ++e) {
      const auto [a, b] = h.edge(e);
      edges.emplace_back(x * nh + a, x * nh + b);
    }
  }
  return Graph(n, std::move(edges));
}

}  // namespace ihc
