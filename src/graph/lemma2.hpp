/// \file lemma2.hpp
/// \brief Lemma 2 (Aubert-Schneider [2]): if a graph G decomposes into two
/// Hamiltonian cycles, then the Cartesian product G x C_r decomposes into
/// three edge-disjoint Hamiltonian cycles.
///
/// Constructive realization: seed the merge engine with the natural
/// 3-factorization of (H1 u H2) x C_r - H1's edges replicated in every
/// layer (r components), H2's likewise (r components), and the vertical
/// layer-to-layer cycles (one per G-vertex).  Squares formed by a G-edge in
/// two adjacent layers plus the two verticals joining them alternate
/// between {H1, vertical} or {H2, vertical}, giving the engine ample moves.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/cycle.hpp"
#include "graph/graph.hpp"

namespace ihc {

/// \param h1, h2  two edge-disjoint Hamiltonian cycles over vertices
///                0..p-1 (p = h1.length() = h2.length())
/// \param r       length of the cycle factor C_r (r >= 3)
/// \returns three edge-disjoint Hamiltonian cycles of (h1 u h2) x C_r that
///          together cover all of its edges.  Product vertex (v, layer) has
///          id v * r + layer.
[[nodiscard]] std::vector<Cycle> lemma2_three_hamiltonian_cycles(
    const Cycle& h1, const Cycle& h2, NodeId r,
    std::uint64_t seed = 0x1ece5ee1u);

}  // namespace ihc
