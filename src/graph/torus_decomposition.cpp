#include "graph/torus_decomposition.hpp"

#include "graph/decomposer.hpp"
#include "graph/hamiltonian.hpp"
#include "util/error.hpp"

namespace ihc {

Graph make_torus_graph(NodeId m, NodeId n) {
  require(m >= 3 && n >= 3, "torus requires m, n >= 3");
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(2) * m * n);
  auto id = [n](NodeId i, NodeId j) { return i * n + j; };
  // Row (horizontal) edges first: edge ids [0, m*n).
  for (NodeId i = 0; i < m; ++i)
    for (NodeId j = 0; j < n; ++j)
      edges.emplace_back(id(i, j), id(i, (j + 1) % n));
  // Column (vertical) edges: edge ids [m*n, 2*m*n).
  for (NodeId i = 0; i < m; ++i)
    for (NodeId j = 0; j < n; ++j)
      edges.emplace_back(id(i, j), id((i + 1) % m, j));
  return Graph(m * n, std::move(edges));
}

std::vector<Cycle> torus_two_hamiltonian_cycles(NodeId m, NodeId n,
                                                std::uint64_t seed) {
  const Graph g = make_torus_graph(m, n);
  const std::size_t row_edges = static_cast<std::size_t>(m) * n;
  std::vector<std::uint8_t> assignment(g.edge_count(), 0);
  for (std::size_t e = row_edges; e < g.edge_count(); ++e) assignment[e] = 1;

  DecomposeOptions options;
  options.seed = seed;
  std::vector<Cycle> cycles =
      merge_to_hamiltonian(FactorSet(g, 2, std::move(assignment)), options);
  ensure_hc_set(g, cycles, /*must_cover_all_edges=*/true);
  return cycles;
}

}  // namespace ihc
