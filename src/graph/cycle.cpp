#include "graph/cycle.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ihc {

Cycle::Cycle(std::vector<NodeId> seq) : seq_(std::move(seq)) {
  require(seq_.size() >= 3, "a cycle needs at least 3 vertices");
  auto sorted = seq_;
  std::sort(sorted.begin(), sorted.end());
  require(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
          "cycle vertices must be distinct");
}

bool Cycle::lies_in(const Graph& g) const {
  for (std::size_t i = 0; i < seq_.size(); ++i) {
    const NodeId u = seq_[i];
    const NodeId v = seq_[(i + 1) % seq_.size()];
    if (u >= g.node_count() || v >= g.node_count()) return false;
    if (!g.has_edge(u, v)) return false;
  }
  return true;
}

bool Cycle::is_hamiltonian(const Graph& g) const {
  return seq_.size() == g.node_count() && lies_in(g);
}

std::vector<EdgeId> Cycle::edge_ids(const Graph& g) const {
  std::vector<EdgeId> out;
  out.reserve(seq_.size());
  for (std::size_t i = 0; i < seq_.size(); ++i) {
    const NodeId u = seq_[i];
    const NodeId v = seq_[(i + 1) % seq_.size()];
    const EdgeId e = g.find_edge(u, v);
    IHC_ENSURE(e != kInvalidEdge, "cycle does not lie in the graph");
    out.push_back(e);
  }
  return out;
}

DirectedCycle::DirectedCycle(const Cycle& cycle, bool reversed,
                             NodeId node_count) {
  order_ = cycle.nodes();
  if (reversed) {
    // Keep N_0 = order_[0] fixed and reverse the rest, so both traversals
    // of one undirected cycle share the same reference node.
    std::reverse(order_.begin() + 1, order_.end());
  }
  position_.assign(node_count, kInvalidNode);
  for (std::size_t i = 0; i < order_.size(); ++i) {
    IHC_ENSURE(order_[i] < node_count, "cycle vertex out of range");
    position_[order_[i]] = static_cast<NodeId>(i);
  }
}

NodeId DirectedCycle::next(NodeId v) const {
  IHC_ENSURE(contains(v), "node not on cycle");
  const std::size_t i = position_[v];
  return order_[(i + 1) % order_.size()];
}

NodeId DirectedCycle::prev(NodeId v) const {
  IHC_ENSURE(contains(v), "node not on cycle");
  const std::size_t i = position_[v];
  return order_[(i + order_.size() - 1) % order_.size()];
}

std::size_t DirectedCycle::id(NodeId v) const {
  IHC_ENSURE(contains(v), "node not on cycle");
  return position_[v];
}

}  // namespace ihc
