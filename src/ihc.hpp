/// \file ihc.hpp
/// \brief Umbrella header: the library's whole public API.
///
/// For quick starts and examples; larger builds should include the
/// specific module headers to keep compile times down.
#pragma once

// Utilities
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

// Graph substrate
#include "graph/connectivity.hpp"
#include "graph/cycle.hpp"
#include "graph/decomposer.hpp"
#include "graph/graph.hpp"
#include "graph/hamiltonian.hpp"
#include "graph/hc_cache.hpp"
#include "graph/export_dot.hpp"
#include "graph/hc_product.hpp"
#include "graph/lemma2.hpp"
#include "graph/torus_decomposition.hpp"

// Topologies (class Lambda)
#include "topology/circulant.hpp"
#include "topology/custom.hpp"
#include "topology/factory.hpp"
#include "topology/hex_mesh.hpp"
#include "topology/hypercube.hpp"
#include "topology/lambda.hpp"
#include "topology/product.hpp"
#include "topology/square_mesh.hpp"
#include "topology/topology.hpp"

// Schedules
#include "sched/analytics.hpp"
#include "sched/ihc_schedule.hpp"
#include "sched/rs_schedule.hpp"
#include "sched/step_schedule.hpp"

// Simulator
#include "sim/deadlock.hpp"
#include "sim/delivery.hpp"
#include "sim/fault.hpp"
#include "sim/flit_network.hpp"
#include "sim/network.hpp"
#include "sim/packet_format.hpp"
#include "sim/params.hpp"
#include "sim/routing.hpp"
#include "sim/signature.hpp"

// Algorithms and applications
#include "core/agreement.hpp"
#include "core/analysis.hpp"
#include "core/ata.hpp"
#include "core/clock_sync.hpp"
#include "core/diagnosis.hpp"
#include "core/frs.hpp"
#include "core/hc_broadcast.hpp"
#include "core/ihc.hpp"
#include "core/ks.hpp"
#include "core/latency.hpp"
#include "core/reassembly.hpp"
#include "core/retransmit.hpp"
#include "core/runner.hpp"
#include "core/service.hpp"
#include "core/verify.hpp"
#include "core/vrs.hpp"
#include "core/vsq.hpp"
