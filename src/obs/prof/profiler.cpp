#include "obs/prof/profiler.hpp"

#include <cstdio>
#include <ostream>
#include <string>
#include <thread>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace ihc::obs::prof {

namespace {

double ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

Json shard_section_json(std::uint32_t shard_count, std::uint64_t runs,
                        std::uint64_t windows, std::uint64_t coordinator_ns,
                        std::uint64_t mailbox_ns, std::uint64_t replay_ns,
                        std::uint64_t wmax_ns, std::uint64_t wmin_ns,
                        const std::vector<ShardWindowStats>& shards) {
  Json sec = Json::object();
  sec.set("shard_count", static_cast<std::int64_t>(shard_count));
  sec.set("runs", static_cast<std::int64_t>(runs));
  sec.set("windows", static_cast<std::int64_t>(windows));
  sec.set("coordinator_ms", ms(coordinator_ns));
  sec.set("mailbox_drain_ms", ms(mailbox_ns));
  sec.set("trace_replay_ms", ms(replay_ns));
  sec.set("window_max_busy_ms", ms(wmax_ns));
  sec.set("window_min_busy_ms", ms(wmin_ns));

  std::uint64_t max_busy = 0;
  std::uint64_t min_busy = ~std::uint64_t{0};
  std::array<std::uint64_t, kStallBuckets> hist{};
  Json per_shard = Json::array();
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const ShardWindowStats& sh = shards[s];
    if (sh.busy_ns > max_busy) max_busy = sh.busy_ns;
    if (sh.busy_ns < min_busy) min_busy = sh.busy_ns;
    for (std::size_t b = 0; b < kStallBuckets; ++b)
      hist[b] += sh.stall_hist[b];
    Json row = Json::object();
    row.set("shard", static_cast<std::int64_t>(s));
    row.set("busy_ms", ms(sh.busy_ns));
    row.set("barrier_wait_ms", ms(sh.barrier_wait_ns));
    row.set("events", static_cast<std::int64_t>(sh.events));
    row.set("idle_windows", static_cast<std::int64_t>(sh.idle_windows));
    per_shard.push(std::move(row));
  }
  if (shards.empty()) min_busy = 0;

  Json imbalance = Json::object();
  imbalance.set("max_busy_ms", ms(max_busy));
  imbalance.set("min_busy_ms", ms(min_busy));
  imbalance.set("busy_ratio", min_busy == 0
                                  ? 0.0
                                  : static_cast<double>(max_busy) /
                                        static_cast<double>(min_busy));
  sec.set("imbalance", std::move(imbalance));
  sec.set("per_shard", std::move(per_shard));

  Json hist_json = Json::array();
  for (const std::uint64_t count : hist)
    hist_json.push(static_cast<std::int64_t>(count));
  sec.set("stall_hist_us", std::move(hist_json));
  return sec;
}

}  // namespace

const char* phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::kSetup: return "setup";
    case Phase::kRouteBuild: return "route_build";
    case Phase::kEventLoop: return "event_loop";
    case Phase::kTraceReplay: return "trace_replay";
    case Phase::kReport: return "report";
    case Phase::kCount: break;
  }
  return "?";
}

WallProfiler::WallProfiler()
    : created_ns_(now_ns()), last_beat_ns_(created_ns_) {}

void WallProfiler::add_phase(Phase p, std::uint64_t total_ns,
                             std::uint64_t exclusive_ns,
                             std::uint64_t count) noexcept {
  const auto i = static_cast<std::size_t>(p);
  phase_total_ns_[i].fetch_add(total_ns, std::memory_order_relaxed);
  phase_excl_ns_[i].fetch_add(exclusive_ns, std::memory_order_relaxed);
  phase_count_[i].fetch_add(count, std::memory_order_relaxed);
}

void WallProfiler::record_parallel_run(const ParallelRunRecord& rec) {
  const std::lock_guard<std::mutex> lock(mu_);
  Section& sec = sections_[rec.shard_count];
  ++sec.runs;
  sec.windows += rec.windows;
  sec.coordinator_ns += rec.coordinator_ns;
  sec.mailbox_drain_ns += rec.mailbox_drain_ns;
  sec.trace_replay_ns += rec.trace_replay_ns;
  sec.window_max_busy_ns += rec.window_max_busy_ns;
  sec.window_min_busy_ns += rec.window_min_busy_ns;
  if (sec.shards.size() < rec.shards.size())
    sec.shards.resize(rec.shards.size());
  for (std::size_t s = 0; s < rec.shards.size(); ++s) {
    ShardWindowStats& into = sec.shards[s];
    const ShardWindowStats& from = rec.shards[s];
    into.busy_ns += from.busy_ns;
    into.barrier_wait_ns += from.barrier_wait_ns;
    into.events += from.events;
    into.idle_windows += from.idle_windows;
    for (std::size_t b = 0; b < kStallBuckets; ++b)
      into.stall_hist[b] += from.stall_hist[b];
  }
}

void WallProfiler::heartbeat(const char* label, std::uint64_t events,
                             SimTime sim_ps, std::uint64_t windows) noexcept {
  const std::uint64_t now = now_ns();
  std::uint64_t last = last_beat_ns_.load(std::memory_order_relaxed);
  if (now - last < interval_ns_.load(std::memory_order_relaxed)) return;
  // One thread wins the CAS and prints; racing threads just move on.
  if (!last_beat_ns_.compare_exchange_strong(last, now,
                                             std::memory_order_relaxed))
    return;
  beats_.fetch_add(1, std::memory_order_relaxed);
  std::fprintf(stderr,
               "[ihc-prof] +%.1fs %s: %llu events, sim %.3f ms, "
               "%llu windows\n",
               static_cast<double>(now - created_ns_) / 1e9, label,
               static_cast<unsigned long long>(events),
               static_cast<double>(sim_ps) / 1e9,
               static_cast<unsigned long long>(windows));
}

Json WallProfiler::to_json() const {
  Json doc = Json::object();
  doc.set("schema", "ihc-profile-v1");
  doc.set("tool", "ihc_cli --profile");
  doc.set("hw_threads",
          static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  doc.set("heartbeat_interval_ms",
          static_cast<std::int64_t>(
              interval_ns_.load(std::memory_order_relaxed) / 1'000'000));
  doc.set("heartbeats", static_cast<std::int64_t>(heartbeats()));

  const std::uint64_t total_ns = elapsed_ns();
  std::uint64_t attributed_ns = 0;
  Json phases = Json::array();
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const std::uint64_t excl = phase_excl_ns_[i].load(std::memory_order_relaxed);
    attributed_ns += excl;
    Json row = Json::object();
    row.set("name", phase_name(static_cast<Phase>(i)));
    row.set("wall_ms", ms(phase_total_ns_[i].load(std::memory_order_relaxed)));
    row.set("exclusive_ms", ms(excl));
    row.set("count", static_cast<std::int64_t>(
                         phase_count_[i].load(std::memory_order_relaxed)));
    phases.push(std::move(row));
  }
  doc.set("total_wall_ms", ms(total_ns));
  doc.set("attributed_wall_ms", ms(attributed_ns));
  doc.set("coverage", total_ns == 0 ? 0.0
                                    : static_cast<double>(attributed_ns) /
                                          static_cast<double>(total_ns));
  doc.set("phases", std::move(phases));

  Json shards = Json::array();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [shard_count, sec] : sections_)
      shards.push(shard_section_json(
          shard_count, sec.runs, sec.windows, sec.coordinator_ns,
          sec.mailbox_drain_ns, sec.trace_replay_ns, sec.window_max_busy_ns,
          sec.window_min_busy_ns, sec.shards));
  }
  doc.set("shards", std::move(shards));
  return doc;
}

void WallProfiler::write_chrome(std::ostream& out) const {
  ChromeTraceSink sink(out);
  std::uint32_t track = 0;

  auto emit = [&](TraceEvent e) {
    const std::string reason = validate_event(e);
    IHC_ENSURE(reason.empty(), "invalid host_phase event: " + reason);
    sink.event(e);
  };
  auto meta = [&](const char* name, std::uint32_t t, std::string label) {
    TraceEvent e;
    e.name = name;
    e.phase = TraceEvent::Phase::kMetadata;
    e.track = t;
    e.detail = std::move(label);
    emit(std::move(e));
  };
  // Host nanoseconds render as chrome microseconds through the
  // picosecond path (ns * 1000 ps, sink divides by 1e6).
  auto span = [&](std::uint32_t t, std::uint64_t from_ns,
                  std::uint64_t dur_ns, std::string label) {
    TraceEvent e;
    e.name = "host_phase";
    e.cat = "prof";
    e.phase = TraceEvent::Phase::kSpan;
    e.ts = static_cast<SimTime>(from_ns * 1000);
    e.dur = static_cast<SimTime>(dur_ns * 1000);
    e.track = t;
    e.detail = std::move(label);
    emit(std::move(e));
  };

  meta("process_name", 0, "ihc-prof");
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const auto p = static_cast<Phase>(i);
    meta("thread_name", track, std::string("phase ") + phase_name(p));
    const std::uint64_t total =
        phase_total_ns_[i].load(std::memory_order_relaxed);
    if (total != 0) span(track, 0, total, phase_name(p));
    ++track;
  }

  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [shard_count, sec] : sections_) {
    const std::string prefix = "shards=" + std::to_string(shard_count);
    meta("thread_name", track, prefix + " coordinator");
    span(track, 0, sec.coordinator_ns, prefix + " coordinator");
    span(track, sec.coordinator_ns, sec.mailbox_drain_ns,
         prefix + " mailbox_drain");
    ++track;
    for (std::size_t s = 0; s < sec.shards.size(); ++s) {
      const ShardWindowStats& sh = sec.shards[s];
      meta("thread_name", track,
           prefix + " shard " + std::to_string(s));
      span(track, 0, sh.busy_ns, prefix + " busy");
      span(track, sh.busy_ns, sh.barrier_wait_ns, prefix + " barrier_wait");
      ++track;
    }
  }
  sink.close();
}

void set_global_profiler(WallProfiler* p) noexcept {
  detail::g_profiler.store(p, std::memory_order_release);
}

}  // namespace ihc::obs::prof
