/// \file profiler.hpp
/// \brief Zero-overhead-when-off wall-clock (host-time) profiling.
///
/// PRs 2/4 built *simulated-time* observability (ihc-trace-v1 and the
/// analysis engine); this module is the *host-time* counterpart, built
/// to answer ROADMAP item 1's open question: where does the wall clock
/// go in a sharded run?  It provides
///
///  * ScopedPhase - RAII timers over the coarse host phases of a run
///    (setup / route-build / event-loop / trace-replay / report), all
///    stamped from std::chrono::steady_clock and kept strictly out of
///    simulated results;
///  * per-shard x per-window breakdown recorded by the parallel engine
///    (compute vs. barrier-wait vs. mailbox-drain vs. coordinator time,
///    plus an imbalance summary and a log2-microsecond stall histogram);
///  * a rate-limited stderr heartbeat so Q_20-scale runs are not silent
///    for minutes;
///  * serialization as schema-versioned `ihc-profile-v1` JSON and as a
///    Chrome trace (`host_phase` spans through ChromeTraceSink).
///
/// Activation follows the Tracer's null-sink idiom: instrumentation
/// sites read one process-global pointer (global_profiler()) and branch
/// on null, so unprofiled runs - tier-1 tests, the seed goldens - pay a
/// single predictable branch and produce byte-identical outputs
/// (asserted in tests/test_obs_prof.cpp).  The CLI owns the profiler's
/// lifetime: `--profile <file>` installs one for the process and writes
/// the report on exit (docs/PROFILING.md).
///
/// Wall-clock numbers are inherently nondeterministic; they live only in
/// profile documents and (when a profiler is active) in the gated
/// `shard.busy_ns` / `shard.barrier_wait_ns` metrics - never in stats,
/// ledgers, traces, or any simulated-result path.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <vector>

#include "sim/params.hpp"
#include "util/json.hpp"

namespace ihc::obs::prof {

/// Coarse host phases of a run.  kEventLoop covers a simulator's run()
/// (sequential, flit-level, or parallel-windowed); kTraceReplay is the
/// parallel coordinator's single-threaded trace replay (nested inside
/// kEventLoop, so it contributes no *exclusive* time); kReport covers
/// result assembly and serialization.
enum class Phase : std::uint8_t {
  kSetup = 0,     ///< topology build, decomposition, campaign assembly
  kRouteBuild,    ///< BFS all-destination routing tables
  kEventLoop,     ///< simulator main loops (all engines)
  kTraceReplay,   ///< parallel coordinator's deferred-trace replay
  kReport,        ///< result assembly + JSON/ASCII serialization
  kCount,
};

inline constexpr std::size_t kPhaseCount =
    static_cast<std::size_t>(Phase::kCount);

[[nodiscard]] const char* phase_name(Phase p) noexcept;

/// Monotonic host time in nanoseconds (steady_clock).
[[nodiscard]] inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Barrier-stall histogram buckets: log2 microseconds.  Bucket 0 holds
/// waits under 1 us; bucket b >= 1 holds [2^(b-1), 2^b) us; the last
/// bucket is open-ended.
inline constexpr std::size_t kStallBuckets = 16;

[[nodiscard]] inline std::size_t stall_bucket(std::uint64_t wait_ns) noexcept {
  const std::uint64_t us = wait_ns / 1000;
  std::size_t b = 0;
  while (b + 1 < kStallBuckets && (std::uint64_t{1} << b) <= us) ++b;
  return b;
}

/// Wall-clock accumulators for one shard over one (or more) run() calls.
struct ShardWindowStats {
  std::uint64_t busy_ns = 0;          ///< inside run_window (compute)
  std::uint64_t barrier_wait_ns = 0;  ///< inside barrier arrive_and_wait
  std::uint64_t events = 0;           ///< events popped
  std::uint64_t idle_windows = 0;     ///< windows with zero pops
  std::array<std::uint64_t, kStallBuckets> stall_hist{};
};

/// One ParallelNetwork::run()'s host-time record, handed to the global
/// profiler by the main thread after the workers have joined.
struct ParallelRunRecord {
  std::uint32_t shard_count = 0;
  std::uint64_t windows = 0;
  std::uint64_t coordinator_ns = 0;    ///< whole coordinate() body
  std::uint64_t mailbox_drain_ns = 0;  ///< drain_mailboxes() share
  std::uint64_t trace_replay_ns = 0;   ///< replay_trace() share
  /// Sum over windows of the busiest / laziest shard's compute time in
  /// that window: the per-window imbalance integral.  Equal sums mean a
  /// perfectly balanced partition; window_max_busy_ns bounds the
  /// critical path a barrier schedule can achieve.
  std::uint64_t window_max_busy_ns = 0;
  std::uint64_t window_min_busy_ns = 0;
  std::vector<ShardWindowStats> shards;
};

/// Thread-safe process-wide collector.  Phase totals are atomics (scopes
/// close on arbitrary threads); shard sections are aggregated under a
/// mutex, keyed by shard count so e.g. a campaign mixing --shards 1 and
/// --shards 4 trials reports the two configurations separately.
class WallProfiler {
 public:
  WallProfiler();

  /// Folds one closed scope into phase `p`.  `exclusive_ns` is nonzero
  /// only for outermost-on-their-thread scopes; summing it across phases
  /// never double-counts nested time, which is what makes the report's
  /// `coverage` ratio meaningful.
  void add_phase(Phase p, std::uint64_t total_ns, std::uint64_t exclusive_ns,
                 std::uint64_t count) noexcept;

  void record_parallel_run(const ParallelRunRecord& rec);

  /// Rate-limited progress line on stderr; safe from any thread.  The
  /// fields are best-effort progress hints, not part of any schema.
  void heartbeat(const char* label, std::uint64_t events, SimTime sim_ps,
                 std::uint64_t windows) noexcept;
  void set_heartbeat_interval_ms(std::uint64_t ms) noexcept {
    interval_ns_.store(ms * 1'000'000, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t heartbeats() const noexcept {
    return beats_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since construction (the report's total_wall_ms).
  [[nodiscard]] std::uint64_t elapsed_ns() const noexcept {
    return now_ns() - created_ns_;
  }

  /// The `ihc-profile-v1` document (docs/PROFILING.md).  Milliseconds
  /// throughout; `coverage` = attributed_wall_ms / total_wall_ms.
  [[nodiscard]] Json to_json() const;

  /// The same data as a Chrome trace: one `host_phase` span per phase
  /// and per shard-section lane, streamed through ChromeTraceSink.
  void write_chrome(std::ostream& out) const;

 private:
  struct Section {
    std::uint64_t runs = 0;
    std::uint64_t windows = 0;
    std::uint64_t coordinator_ns = 0;
    std::uint64_t mailbox_drain_ns = 0;
    std::uint64_t trace_replay_ns = 0;
    std::uint64_t window_max_busy_ns = 0;
    std::uint64_t window_min_busy_ns = 0;
    std::vector<ShardWindowStats> shards;
  };

  std::uint64_t created_ns_;
  std::array<std::atomic<std::uint64_t>, kPhaseCount> phase_total_ns_{};
  std::array<std::atomic<std::uint64_t>, kPhaseCount> phase_excl_ns_{};
  std::array<std::atomic<std::uint64_t>, kPhaseCount> phase_count_{};
  std::atomic<std::uint64_t> interval_ns_{2'000'000'000};
  std::atomic<std::uint64_t> last_beat_ns_;
  std::atomic<std::uint64_t> beats_{0};
  mutable std::mutex mu_;                    ///< guards sections_
  std::map<std::uint32_t, Section> sections_;  ///< keyed by shard count
};

namespace detail {
/// The process-global profiler pointer; the single word every
/// instrumentation site reads.  Inline so the null check compiles to a
/// load + branch with no function call.
inline std::atomic<WallProfiler*> g_profiler{nullptr};
}  // namespace detail

[[nodiscard]] inline WallProfiler* global_profiler() noexcept {
  return detail::g_profiler.load(std::memory_order_acquire);
}

/// Installs (or, with nullptr, removes) the process profiler.  Not
/// thread-safe against in-flight scopes: call before spawning workers
/// and after joining them, as the CLI does.
void set_global_profiler(WallProfiler* p) noexcept;

/// RAII phase scope.  Captures the global pointer once at construction;
/// when no profiler is installed both constructor and destructor are a
/// load + branch.  A thread_local depth counter marks the outermost
/// scope per thread - only those contribute exclusive time, so nesting
/// (kTraceReplay inside kEventLoop, kRouteBuild inside kSetup) never
/// double-counts against coverage.
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase p) noexcept : prof_(global_profiler()),
                                           phase_(p) {
    if (prof_ == nullptr) return;
    outermost_ = (scope_depth()++ == 0);
    start_ = now_ns();
  }
  ~ScopedPhase() {
    if (prof_ == nullptr) return;
    const std::uint64_t dur = now_ns() - start_;
    --scope_depth();
    prof_->add_phase(phase_, dur, outermost_ ? dur : 0, 1);
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  static std::uint32_t& scope_depth() noexcept {
    thread_local std::uint32_t depth = 0;
    return depth;
  }

  WallProfiler* prof_;
  Phase phase_;
  std::uint64_t start_ = 0;
  bool outermost_ = false;
};

}  // namespace ihc::obs::prof
