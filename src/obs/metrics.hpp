/// \file metrics.hpp
/// \brief Named counters / maxima / histograms for simulator runs.
///
/// Where the Tracer (trace.hpp) answers "what happened when", the
/// MetricsRegistry answers "how much": blocked-cycle counts, per-link
/// utilization, max FIFO depth, per-stage latency distributions.  It is
/// the bridge from simulator internals to the campaign reports: each
/// trial fills a registry, the runner merges them in expansion order
/// (deterministic across --jobs), and the merged registry serializes as
/// the optional `metrics` block of an `ihc-campaign-v1` document (see
/// EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace ihc::obs {

/// What a metric entry accumulates; fixed on first touch of the name.
enum class MetricKind : std::uint8_t { kCounter, kMax, kHistogram };

/// A registry of named metrics.  Names are dotted paths
/// (`net.deliveries`, `flit.max_fifo_depth`, `ihc.stage_latency_ps`);
/// serialization is name-sorted, so documents are deterministic.
class MetricsRegistry {
 public:
  /// Adds `delta` to a counter (created at 0).
  void count(std::string_view name, std::int64_t delta = 1);

  /// Raises a high-watermark metric to at least `value`.
  void maximum(std::string_view name, std::int64_t value);

  /// Appends one sample to a histogram.
  void observe(std::string_view name, double sample);

  /// Folds `other` into this registry: counters add, maxima take the
  /// larger value, histogram samples append in `other`'s order.  A name
  /// registered with different kinds on the two sides throws ConfigError.
  void merge(const MetricsRegistry& other);

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Counter value; 0 when the name is absent (kind mismatch throws).
  [[nodiscard]] std::int64_t counter(std::string_view name) const;
  /// High-watermark value; 0 when the name is absent.
  [[nodiscard]] std::int64_t max_value(std::string_view name) const;
  /// Histogram samples in observation order; empty when absent.
  [[nodiscard]] std::vector<double> samples(std::string_view name) const;

  /// Name-sorted JSON object, one member per metric:
  ///   counter / max -> {"kind": ..., "value": N}
  ///   histogram     -> {"kind": "histogram", "count", "mean", "min",
  ///                     "max", "p50", "p90", "p99", "samples": [...]}
  [[nodiscard]] Json to_json() const;

 private:
  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    std::int64_t value = 0;             // counter / max
    std::vector<double> samples;        // histogram
  };

  Entry& touch(std::string_view name, MetricKind kind);
  [[nodiscard]] const Entry* find(std::string_view name,
                                  MetricKind kind) const;

  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace ihc::obs
