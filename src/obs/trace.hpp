/// \file trace.hpp
/// \brief Structured event tracing for the simulators and ATA runners.
///
/// The paper's evaluation reasons about *where time goes* inside a
/// broadcast - header latency alpha per hop, FIFO occupancy, link
/// contention between interleaved Hamiltonian cycles - but finish times
/// alone cannot show any of that.  This module records the simulator's
/// micro-operations as structured events (schema `ihc-trace-v1`, see
/// docs/TRACING.md):
///
///  * a Tracer is the frontend the simulators call.  With no TraceSink
///    attached every hook is a branch-on-null no-op and no event
///    arguments are even evaluated, so untraced runs (tier-1 tests, the
///    campaign engine by default) stay byte-identical;
///  * a TraceSink is the backend.  ChromeTraceSink streams Chrome/
///    Perfetto `trace_event` JSON (open in https://ui.perfetto.dev or
///    chrome://tracing); CollectingSink retains events for tests;
///  * every event is validated against the schema at emit time
///    (validate_event), so an emitted trace is schema-valid by
///    construction.
///
/// Track layout: one pseudo-thread per node ([0, N)), one per directed
/// link ([N, N+L)), and one control track (N+L) for stage spans, all
/// named via metadata events by announce_topology().
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sim/params.hpp"

namespace ihc::obs {

/// Unit of TraceEvent::ts.  The packet-level simulator stamps integer
/// picoseconds; the flit-level simulator stamps flit-cycle numbers.
enum class TimeBase : std::uint8_t { kPicoseconds, kCycles };

/// One structured trace event.  Integer fields use kUnset when absent;
/// which fields are required for which event name is defined by
/// validate_event() and documented in docs/TRACING.md.
struct TraceEvent {
  enum class Phase : std::uint8_t { kInstant, kSpan, kMetadata };
  static constexpr std::int64_t kUnset = -1;

  const char* name = "";
  const char* cat = "";
  Phase phase = Phase::kInstant;
  TimeBase timebase = TimeBase::kPicoseconds;
  SimTime ts = 0;    ///< picoseconds (or flit cycles, see timebase)
  SimTime dur = 0;   ///< spans only
  std::uint32_t track = 0;

  std::int64_t flow = kUnset;    ///< flow id (packet-sim) / packet (flit)
  std::int64_t node = kUnset;
  std::int64_t link = kUnset;
  std::int64_t origin = kUnset;
  std::int64_t route = kUnset;   ///< route tag (copy number)
  std::int64_t pos = kUnset;     ///< route position / flit hop
  std::int64_t len = kUnset;     ///< packet length in FIFO units
  std::int64_t depth = kUnset;   ///< buffer / FIFO occupancy after the op
  std::int64_t stage = kUnset;
  std::int64_t vc = kUnset;      ///< virtual channel (flit-sim)
  std::string detail;            ///< kind / action / reason / label
};

/// Schema check for one event: returns an empty string when the event is
/// a valid `ihc-trace-v1` event, else a human-readable reason.
[[nodiscard]] std::string validate_event(const TraceEvent& e);

/// Backend interface: receives every emitted event, in emission order.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void event(const TraceEvent& e) = 0;
};

/// Retains events in memory (tests and programmatic analysis).
///
/// By default the sink is unbounded.  Constructed with a positive
/// `max_events` it becomes a ring buffer holding the *most recent*
/// max_events events: once full, each new event overwrites the oldest
/// retained one and dropped() counts the evictions.  Analyses consuming
/// a truncated stream must treat it as a suffix of the run (TraceLint
/// skips whole-run invariants when dropped() > 0, see docs/ANALYSIS.md).
class CollectingSink : public TraceSink {
 public:
  CollectingSink() = default;
  /// Bounded mode; max_events == 0 means unbounded.
  explicit CollectingSink(std::size_t max_events)
      : max_events_(max_events) {}

  void event(const TraceEvent& e) override;

  /// Retained events in emission order (oldest retained event first).
  /// In bounded mode the ring is rotated into place lazily here, which
  /// is why the buffer is mutable.
  [[nodiscard]] const std::vector<TraceEvent>& events() const;

  /// Events evicted by the bound (0 in unbounded mode).
  [[nodiscard]] std::size_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t max_events() const { return max_events_; }

 private:
  std::size_t max_events_ = 0;  ///< 0 = unbounded
  std::size_t dropped_ = 0;
  mutable std::size_t head_ = 0;  ///< index of the oldest retained event
  mutable std::vector<TraceEvent> events_;
};

/// Streams Chrome `trace_event` JSON (JSON Object Format: a
/// `traceEvents` array plus `otherData.schema = "ihc-trace-v1"`).
/// Serialization is deterministic: fixed key order, std::to_chars
/// doubles - two identical runs produce byte-identical files.
class ChromeTraceSink : public TraceSink {
 public:
  /// Writes the document preamble immediately; `out` must outlive the
  /// sink or close() must be called first.
  explicit ChromeTraceSink(std::ostream& out);
  ~ChromeTraceSink() override;

  void event(const TraceEvent& e) override;

  /// Writes the document tail; idempotent, also run by the destructor.
  void close();

  [[nodiscard]] std::size_t event_count() const { return count_; }

 private:
  std::ostream* out_;
  std::size_t count_ = 0;
  bool closed_ = false;
};

/// Frontend the simulators and runners call.  Emission validates against
/// the schema (IHC_ENSURE) and forwards to the sink; when no sink is
/// attached, active() is false and instrumentation sites skip all work.
class Tracer {
 public:
  /// Attaches the backend (not owned; nullptr detaches).
  void attach(TraceSink* sink) { sink_ = sink; }
  [[nodiscard]] bool active() const { return sink_ != nullptr; }

  /// Timestamp unit stamped on subsequent events (default picoseconds).
  void set_timebase(TimeBase tb) { timebase_ = tb; }

  /// Emits process/thread metadata naming one track per node, per
  /// directed link, and the control track; records the track layout.
  /// Safe to call repeatedly - only the first call emits.
  void announce_topology(const Graph& g);

  [[nodiscard]] std::uint32_t node_track(NodeId v) const { return v; }
  [[nodiscard]] std::uint32_t link_track(LinkId l) const {
    return nodes_ + l;
  }
  [[nodiscard]] std::uint32_t control_track() const {
    return nodes_ + links_;
  }

  // -- packet-level simulator events --------------------------------------
  void packet_injected(SimTime ts, std::uint32_t flow, NodeId origin,
                       std::uint16_t route, std::uint32_t len);
  void header_advanced(SimTime ts, std::uint32_t flow, NodeId node,
                       std::uint32_t pos);
  void delivered(SimTime ts, std::uint32_t flow, NodeId node, NodeId origin,
                 std::uint16_t route, std::int64_t pos = TraceEvent::kUnset);
  /// Link transmission span [from, until]; kind is one of inject /
  /// cut_through / stall / saf / background; flow may be kUnset
  /// (single-link background occupancies have no flow).  `pos` is the
  /// route position the transmission advances the header *to* - the
  /// causality id linking an xmit to the downstream header_advanced /
  /// delivered events of the same flow.
  void xmit(SimTime from, SimTime until, LinkId link, const char* kind,
            std::int64_t flow, std::int64_t pos = TraceEvent::kUnset);
  /// Intermediate-storage residency span (the packet-level FIFO
  /// enqueue..dequeue pair); depth is the occupancy after the enqueue.
  void buffered(SimTime from, SimTime until, NodeId node, std::uint32_t flow,
                std::uint32_t depth);
  /// Wormhole header stall span (waiting for the transmitter).
  void stalled(SimTime from, SimTime until, NodeId node, std::uint32_t flow);
  void fault_fired(SimTime ts, NodeId node, std::uint32_t flow,
                   const char* action,
                   std::int64_t pos = TraceEvent::kUnset);
  void link_dropped(SimTime ts, NodeId node, std::uint32_t flow, LinkId link,
                    std::int64_t pos = TraceEvent::kUnset);

  // -- runner events -------------------------------------------------------
  /// Control-track span: an IHC stage, a sequential-ATA broadcast, an FRS
  /// step.  `label` names it; stage / origin are optional coordinates.
  void stage_span(SimTime from, SimTime until, const char* label,
                  std::int64_t stage, std::int64_t origin = TraceEvent::kUnset);

  // -- workload engine events ----------------------------------------------
  /// Open-loop session lifecycle (src/workload/engine.hpp).  `session` is
  /// the engine's global session id, carried in the `stage` field; the
  /// span's `len` is the FRS batch size the session rode in.
  void session_arrived(SimTime ts, std::int64_t session, NodeId origin);
  /// Bounded-queue admission rejection; depth is the queue occupancy the
  /// arrival found.
  void session_rejected(SimTime ts, std::int64_t session, NodeId origin,
                        std::uint32_t depth);
  /// Arrival-to-completion span of one accepted session.
  void session_span(SimTime from, SimTime until, std::int64_t session,
                    NodeId origin, std::uint32_t batch);

  // -- flit-level simulator events -----------------------------------------
  void fifo_enqueue(SimTime cycle, LinkId link, std::uint8_t vc,
                    std::uint32_t packet, std::uint32_t hop,
                    std::uint32_t depth);
  void fifo_dequeue(SimTime cycle, LinkId link, std::uint8_t vc,
                    std::uint32_t packet, std::uint32_t hop,
                    std::uint32_t depth);
  void flit_blocked(SimTime cycle, LinkId link, std::uint8_t vc,
                    std::uint32_t packet, std::uint32_t hop,
                    const char* reason);

  [[nodiscard]] std::size_t emitted() const { return emitted_; }

 private:
  void emit(TraceEvent&& e);

  TraceSink* sink_ = nullptr;
  TimeBase timebase_ = TimeBase::kPicoseconds;
  std::uint32_t nodes_ = 0;
  std::uint32_t links_ = 0;
  bool announced_ = false;
  std::size_t emitted_ = 0;
};

}  // namespace ihc::obs
