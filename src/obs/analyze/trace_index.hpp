/// \file trace_index.hpp
/// \brief Internal index over one ihc-trace-v1 event stream.
///
/// One O(events) pass groups the stream by flow, link and stage and
/// derives the run's parameters (topology from the metadata track
/// labels, alpha from a cut-through span, tau_s from an injection span)
/// so the analyses and TraceLint never re-scan the raw vector.  Not part
/// of the public analyze API - analysis.cpp and lint.cpp share it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/analyze/analysis.hpp"
#include "obs/trace.hpp"

namespace ihc::obs::analyze {

inline constexpr std::int64_t kNone = TraceEvent::kUnset;

struct XmitRec {
  SimTime start = 0, end = 0;
  std::int64_t link = kNone;
  std::int64_t flow = kNone;
  std::int64_t pos = kNone;  ///< route position the header advances to
  std::string kind;          ///< inject / cut_through / stall / saf / background
};

struct ArrivalRec {
  SimTime ts = 0;
  std::int64_t node = kNone, pos = kNone;
};

struct DeliveryRec {
  SimTime ts = 0;
  std::int64_t node = kNone, pos = kNone;
};

struct FaultRec {
  SimTime ts = 0;
  std::int64_t node = kNone, pos = kNone;
  std::string action;  ///< drop / corrupt / delay / link_dropped
  bool kills = false;  ///< the copy dies at this position (drop variants)
};

struct FlowInfo {
  bool injected = false;  ///< saw packet_injected => foreground flow
  SimTime inject_ts = 0;
  std::int64_t origin = kNone, route = kNone, len = kNone;
  std::vector<ArrivalRec> arrivals;    ///< header_advanced, emission order
  std::vector<DeliveryRec> deliveries;
  std::vector<XmitRec> xmits;
  std::vector<FaultRec> faults;
  SimTime completion = kNone;   ///< latest delivery (tail arrival)
  std::int64_t kill_pos = kNone;  ///< smallest pos where a drop killed it
};

struct StageRec {
  SimTime begin = 0, end = 0;
  std::int64_t stage = kNone, origin = kNone;
  std::string label;  ///< stage / broadcast / frs_step / ...
};

struct BufferRec {
  SimTime begin = 0, end = 0;
  std::int64_t node = kNone, flow = kNone, depth = kNone;
};

struct FifoOp {
  SimTime ts = 0;
  std::int64_t link = kNone, vc = kNone, packet = kNone, depth = kNone;
  bool enqueue = false;
};

/// One workload-engine session event (session_arrive / session_reject
/// instants, "session" service spans).  `session` is the engine's global
/// session id (carried in the stage field of the raw event).
struct SessionOp {
  SimTime ts = 0, end = 0;  ///< end == ts for instants
  std::int64_t session = kNone, origin = kNone;
  std::int64_t batch = kNone;  ///< sessions merged into the span's batch
  std::string kind;            ///< arrive / reject / complete
};

struct TraceIndex {
  TimeBase timebase = TimeBase::kPicoseconds;
  std::uint32_t nodes = 0;  ///< from topology metadata (0 when absent)
  std::uint32_t links = 0;
  std::vector<std::int64_t> link_src, link_dst;  ///< per link, kNone unknown
  std::vector<FlowInfo> flows;                   ///< dense by flow id
  std::vector<std::vector<XmitRec>> link_xmits;  ///< per link, emission order
  std::vector<StageRec> stages;
  std::vector<BufferRec> buffered;
  std::vector<FifoOp> fifo_ops;  ///< flit-level ops, emission order
  std::vector<SessionOp> sessions;  ///< workload sessions, emission order
  SimTime horizon = 0;           ///< max(ts + dur) over all events
  SimTime alpha = kNone;         ///< derived per-hop header latency
  SimTime tau_s = kNone;         ///< derived startup time
  std::size_t foreground_flows = 0;
  bool has_fault = false;           ///< any fault_fired / link_dropped
  bool has_foreground_saf = false;  ///< saf or stall xmit on a foreground flow
  bool has_background = false;      ///< any background traffic
  bool has_workload = false;        ///< any session_* workload events

  /// Links terminating at `node`; kNone when the topology is unknown.
  [[nodiscard]] std::int64_t in_degree(std::int64_t node) const;

  /// True when every stage can be compared against the closed-form
  /// cut-through model (fault-free, no buffering, parameters derived).
  [[nodiscard]] bool cut_through_clean() const;
};

[[nodiscard]] TraceIndex build_index(const std::vector<TraceEvent>& events);

/// Foreground flows belonging to one stage span: injected inside
/// [begin, end) and, when the span carries a coordinate, matching it
/// (route tag for "stage" spans, origin node for "broadcast" spans).
[[nodiscard]] std::vector<std::int64_t> stage_flows(const TraceIndex& ix,
                                                    const StageRec& rec);

/// Closed-form duration tau_s + mu alpha + (P - 1) alpha of one stage
/// span, where P is the critical candidate's final route position;
/// kNone when the trace is not cut_through_clean() or the span has no
/// candidate flows.
[[nodiscard]] SimTime stage_model(const TraceIndex& ix, const StageRec& rec);

/// TraceLint entry point (implemented in lint.cpp).
[[nodiscard]] LintResult run_lint(const std::vector<TraceEvent>& events,
                                  const TraceIndex& ix,
                                  const Options& options,
                                  std::size_t dropped);

}  // namespace ihc::obs::analyze
