/// \file analysis.hpp
/// \brief Trace-analysis engine: turns ihc-trace-v1 event streams into
/// ihc-analysis-v1 reports (docs/ANALYSIS.md).
///
/// Three pillars, mirroring what the paper's evaluation reasons about:
///
///  * critical-path extraction - the causality chain inject -> xmit ->
///    header_advanced -> delivered is walked backwards from the last
///    delivery, producing the hop sequence that determines T_IHC with a
///    per-hop wire / queue / switch / store breakdown;
///  * utilization & contention timelines - per-link busy fractions,
///    FIFO queue-depth percentiles and stage overlap over fixed-width
///    sim-time windows, as JSON and as an ASCII heatmap;
///  * TraceLint - machine checks of the paper's correctness properties
///    (delivery completeness, per-link FIFO ordering, buffer bounds,
///    fault silence, closed-form stage time) from the trace alone.
///
/// Input is either an in-process CollectingSink event vector or a
/// ChromeTraceSink JSON document loaded back via read_trace_file().
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/json.hpp"

namespace ihc::obs::analyze {

/// One hop of the critical path.  The decomposition satisfies
///   total == wire + queue + swtch + store
/// where `total` is the header-arrival delta across the hop (see
/// docs/ANALYSIS.md for the per-kind accounting).
struct Hop {
  std::int64_t pos = TraceEvent::kUnset;   ///< route position reached
  std::int64_t node = TraceEvent::kUnset;  ///< node reached
  std::int64_t link = TraceEvent::kUnset;  ///< directed link crossed
  std::string kind;          ///< inject / cut_through / stall / saf
  SimTime arrival = 0;       ///< header arrival at `node`
  SimTime total = 0;         ///< arrival minus the previous hop's arrival
  SimTime wire = 0;          ///< header propagation (alpha)
  SimTime queue = 0;         ///< waiting for a busy transmitter
  SimTime swtch = 0;         ///< switch/startup overhead (tau_s, restart)
  SimTime store = 0;         ///< store-and-forward full-packet residency
};

/// The longest dependency chain of the run: the flow whose final tail
/// arrival is latest, expanded hop by hop.
struct CriticalPath {
  std::int64_t flow = TraceEvent::kUnset;
  std::int64_t origin = TraceEvent::kUnset;
  std::int64_t route = TraceEvent::kUnset;
  SimTime inject_ts = 0;
  SimTime finish_ts = 0;  ///< tail arrival of the latest delivery
  SimTime total = 0;      ///< finish_ts - inject_ts
  SimTime tail = 0;       ///< finish_ts minus the last header arrival
  SimTime wire = 0, queue = 0, swtch = 0, store = 0;  ///< sums over hops
  std::vector<Hop> hops;
};

/// Per stage-span summary with the closed-form model delta when the run
/// is fault-free cut-through (model == kUnset otherwise).
struct StageSummary {
  std::int64_t stage = TraceEvent::kUnset;
  std::int64_t origin = TraceEvent::kUnset;
  std::string label;
  SimTime begin = 0, end = 0;
  std::int64_t critical_flow = TraceEvent::kUnset;
  SimTime critical_finish = 0;
  SimTime model = TraceEvent::kUnset;  ///< closed-form stage duration
};

struct LinkUtilization {
  std::int64_t link = TraceEvent::kUnset;
  std::int64_t src = TraceEvent::kUnset, dst = TraceEvent::kUnset;
  double busy_fraction = 0.0;
  std::uint64_t xmits = 0;
};

struct UtilizationWindow {
  SimTime start = 0;
  double mean_busy = 0.0;  ///< mean busy fraction across links
  double max_busy = 0.0;   ///< busiest link's fraction in the window
  std::uint32_t active_stages = 0;  ///< stage spans overlapping the window
};

struct QueueDepthStats {
  std::size_t samples = 0;
  double p50 = 0.0, p90 = 0.0, p99 = 0.0;
  std::int64_t max = 0;
};

struct Utilization {
  SimTime horizon = 0;       ///< latest event end seen in the trace
  SimTime window = 0;        ///< timeline window width
  std::vector<LinkUtilization> links;
  double mean_busy = 0.0, max_busy = 0.0;
  std::vector<UtilizationWindow> timeline;
  QueueDepthStats queue_depth;
  /// Per-link busy fraction per window ([link][window], heatmap rows).
  std::vector<std::vector<double>> heat;
};

struct LintViolation {
  std::string check;
  std::string message;
};

struct LintSkipped {
  std::string check;
  std::string reason;
};

/// Outcome of the TraceLint pass.  A check lands in exactly one of
/// checks_run or skipped; violations reference checks_run entries.
struct LintResult {
  std::vector<std::string> checks_run;
  std::vector<LintSkipped> skipped;
  std::vector<LintViolation> violations;
  [[nodiscard]] bool ok() const { return violations.empty(); }
};

struct Options {
  std::size_t windows = 64;        ///< timeline / heatmap resolution
  std::int64_t buffer_bound = -1;  ///< -1: derive from node in-degree
  std::size_t heatmap_rows = 16;   ///< busiest links shown in the heatmap
};

/// One analyzed trace (serialized as ihc-analysis-v1 by to_json()).
struct Analysis {
  TimeBase timebase = TimeBase::kPicoseconds;
  std::size_t events = 0;
  std::size_t dropped = 0;  ///< events evicted by a bounded CollectingSink
  std::uint32_t nodes = 0, links = 0;
  std::size_t flows = 0;    ///< foreground (broadcast) flows
  SimTime alpha = TraceEvent::kUnset;  ///< derived per-hop latency
  SimTime tau_s = TraceEvent::kUnset;  ///< derived startup time
  CriticalPath critical;
  std::vector<StageSummary> stages;
  Utilization util;
  LintResult lint;
};

/// Analyzes one ihc-trace-v1 event stream.  `dropped` is the bounded
/// CollectingSink's eviction count; when nonzero, TraceLint skips the
/// whole-run invariants (the stream is only a suffix of the run).
[[nodiscard]] Analysis analyze_trace(const std::vector<TraceEvent>& events,
                                     const Options& options = {},
                                     std::size_t dropped = 0);

/// Full ihc-analysis-v1 document.  `source` (optional) is inserted
/// verbatim after the schema tag, recording where the trace came from.
[[nodiscard]] Json to_json(const Analysis& a, const Json* source = nullptr);

/// Compact per-trial summary for the `analysis` block of ihc-campaign-v1
/// reports (`campaign --analyze`).
[[nodiscard]] Json trial_summary_json(const Analysis& a);

/// ASCII link-utilization heatmap (busiest links first) plus the
/// all-link mean and stage-occupancy rows.
[[nodiscard]] std::string ascii_heatmap(const Analysis& a,
                                        const Options& options = {});

/// Reads events back from a ChromeTraceSink JSON document.  Throws
/// ConfigError on malformed input or a missing ihc-trace-v1 schema tag.
[[nodiscard]] std::vector<TraceEvent> parse_trace_json(std::string_view text);
[[nodiscard]] std::vector<TraceEvent> read_trace_file(const std::string& path);

}  // namespace ihc::obs::analyze
