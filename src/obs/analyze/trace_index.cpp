#include "obs/analyze/trace_index.hpp"

#include <algorithm>
#include <charconv>
#include <string_view>

namespace ihc::obs::analyze {

namespace {

/// Parses the leading integer of `s` (after `prefix`), kNone on failure.
std::int64_t parse_int_after(std::string_view s, std::string_view prefix) {
  if (s.substr(0, prefix.size()) != prefix) return kNone;
  s.remove_prefix(prefix.size());
  std::int64_t value = kNone;
  std::from_chars(s.data(), s.data() + s.size(), value);
  return value;
}

template <typename Vec>
void ensure_size(Vec& v, std::size_t index) {
  if (v.size() <= index) v.resize(index + 1);
}

FlowInfo& flow_of(TraceIndex& ix, std::int64_t id) {
  ensure_size(ix.flows, static_cast<std::size_t>(id));
  return ix.flows[static_cast<std::size_t>(id)];
}

/// "link 12: 3->7" from announce_topology(); kNone fields when the label
/// has another shape.
void parse_link_label(TraceIndex& ix, std::string_view label) {
  const std::int64_t l = parse_int_after(label, "link ");
  if (l < 0) return;
  const auto colon = label.find(": ");
  const auto arrow = label.find("->");
  if (colon == std::string_view::npos || arrow == std::string_view::npos)
    return;
  std::int64_t src = kNone, dst = kNone;
  {
    const std::string_view s = label.substr(colon + 2, arrow - colon - 2);
    std::from_chars(s.data(), s.data() + s.size(), src);
  }
  {
    const std::string_view s = label.substr(arrow + 2);
    std::from_chars(s.data(), s.data() + s.size(), dst);
  }
  if (ix.link_src.size() <= static_cast<std::size_t>(l)) {
    ix.link_src.resize(static_cast<std::size_t>(l) + 1, kNone);
    ix.link_dst.resize(static_cast<std::size_t>(l) + 1, kNone);
  }
  ix.link_src[static_cast<std::size_t>(l)] = src;
  ix.link_dst[static_cast<std::size_t>(l)] = dst;
  ix.links = std::max(ix.links, static_cast<std::uint32_t>(l + 1));
}

}  // namespace

std::int64_t TraceIndex::in_degree(std::int64_t node) const {
  if (link_dst.empty()) return kNone;
  std::int64_t degree = 0;
  for (const std::int64_t dst : link_dst)
    if (dst == node) ++degree;
  return degree;
}

bool TraceIndex::cut_through_clean() const {
  // Background traffic can delay injections without leaving a saf/stall
  // marker, so the closed form only applies to dedicated-network runs.
  return !has_fault && !has_foreground_saf && !has_background &&
         buffered.empty() && alpha != kNone && tau_s != kNone &&
         timebase == TimeBase::kPicoseconds;
}

TraceIndex build_index(const std::vector<TraceEvent>& events) {
  TraceIndex ix;
  bool timebase_seen = false;
  for (const TraceEvent& e : events) {
    if (e.phase != TraceEvent::Phase::kMetadata && !timebase_seen) {
      ix.timebase = e.timebase;
      timebase_seen = true;
    }
    ix.horizon = std::max(ix.horizon, e.ts + e.dur);
    const std::string_view name = e.name;
    if (e.phase == TraceEvent::Phase::kMetadata) {
      if (name == "thread_name") {
        const std::int64_t v = parse_int_after(e.detail, "node ");
        if (v >= 0)
          ix.nodes = std::max(ix.nodes, static_cast<std::uint32_t>(v + 1));
        parse_link_label(ix, e.detail);
      }
      continue;
    }
    if (name == "packet_injected") {
      FlowInfo& f = flow_of(ix, e.flow);
      f.injected = true;
      f.inject_ts = e.ts;
      f.origin = e.origin;
      f.route = e.route;
      f.len = e.len;
    } else if (name == "header_advanced") {
      flow_of(ix, e.flow).arrivals.push_back({e.ts, e.node, e.pos});
    } else if (name == "delivered") {
      FlowInfo& f = flow_of(ix, e.flow);
      f.deliveries.push_back({e.ts, e.node, e.pos});
      f.completion = std::max(f.completion, e.ts);
    } else if (name == "xmit") {
      XmitRec x{e.ts, e.ts + e.dur, e.link, e.flow, e.pos, e.detail};
      ensure_size(ix.link_xmits, static_cast<std::size_t>(e.link));
      ix.link_xmits[static_cast<std::size_t>(e.link)].push_back(x);
      ix.links =
          std::max(ix.links, static_cast<std::uint32_t>(e.link + 1));
      if (e.detail == "background") {
        ix.has_background = true;
      } else if (e.flow != kNone) {
        flow_of(ix, e.flow).xmits.push_back(std::move(x));
      }
    } else if (name == "buffered") {
      ix.buffered.push_back({e.ts, e.ts + e.dur, e.node, e.flow, e.depth});
    } else if (name == "fault_fired" || name == "link_dropped") {
      ix.has_fault = true;
      FlowInfo& f = flow_of(ix, e.flow);
      const bool kills = name == "link_dropped" || e.detail == "drop";
      f.faults.push_back(
          {e.ts, e.node, e.pos,
           name == "link_dropped" ? "link_dropped" : e.detail, kills});
      if (kills && e.pos != kNone &&
          (f.kill_pos == kNone || e.pos < f.kill_pos))
        f.kill_pos = e.pos;
    } else if (name == "stage") {
      ix.stages.push_back({e.ts, e.ts + e.dur, e.stage, e.origin, e.detail});
    } else if (name == "fifo_enqueue" || name == "fifo_dequeue") {
      ix.fifo_ops.push_back(
          {e.ts, e.link, e.vc, e.flow, e.depth, name == "fifo_enqueue"});
      ix.links =
          std::max(ix.links, static_cast<std::uint32_t>(e.link + 1));
    } else if (name == "session_arrive" || name == "session_reject" ||
               name == "session") {
      ix.has_workload = true;
      ix.sessions.push_back(
          {e.ts, e.ts + e.dur, e.stage, e.origin,
           name == "session" ? e.len : kNone,
           name == "session_arrive"  ? "arrive"
           : name == "session_reject" ? "reject"
                                      : "complete"});
    }
    // stalled / flit_blocked spans add no index state beyond the horizon.
  }

  for (const FlowInfo& f : ix.flows) {
    if (!f.injected) continue;
    ++ix.foreground_flows;
    for (const XmitRec& x : f.xmits)
      if (x.kind == "saf" || x.kind == "stall") ix.has_foreground_saf = true;
  }

  // Derive alpha from any foreground cut-through span (dur == len alpha),
  // then tau_s from an injection span (dur == tau_s + len alpha).
  for (const FlowInfo& f : ix.flows) {
    if (!f.injected || f.len == kNone || f.len <= 0) continue;
    for (const XmitRec& x : f.xmits) {
      if (ix.alpha == kNone && x.kind == "cut_through")
        ix.alpha = (x.end - x.start) / f.len;
    }
  }
  if (ix.alpha != kNone) {
    for (const FlowInfo& f : ix.flows) {
      if (!f.injected || f.len == kNone || f.len <= 0) continue;
      for (const XmitRec& x : f.xmits) {
        if (x.kind == "inject") {
          ix.tau_s = (x.end - x.start) - f.len * ix.alpha;
          break;
        }
      }
      if (ix.tau_s != kNone) break;
    }
  }
  if (ix.link_src.size() < ix.links) {
    ix.link_src.resize(ix.links, kNone);
    ix.link_dst.resize(ix.links, kNone);
  }
  return ix;
}

std::vector<std::int64_t> stage_flows(const TraceIndex& ix,
                                      const StageRec& rec) {
  std::vector<std::int64_t> out;
  for (std::size_t id = 0; id < ix.flows.size(); ++id) {
    const FlowInfo& f = ix.flows[id];
    if (!f.injected) continue;
    if (f.inject_ts < rec.begin || f.inject_ts >= rec.end) continue;
    if (rec.origin != kNone) {
      if (rec.label == "stage" && f.route != rec.origin) continue;
      if (rec.label == "broadcast" && f.origin != rec.origin) continue;
    }
    out.push_back(static_cast<std::int64_t>(id));
  }
  return out;
}

SimTime stage_model(const TraceIndex& ix, const StageRec& rec) {
  if (rec.label != "stage" || !ix.cut_through_clean()) return kNone;
  std::int64_t len = kNone;
  std::int64_t hops = 0;
  for (const std::int64_t id : stage_flows(ix, rec)) {
    const FlowInfo& f = ix.flows[static_cast<std::size_t>(id)];
    len = f.len;
    for (const ArrivalRec& a : f.arrivals) hops = std::max(hops, a.pos);
  }
  if (len == kNone || hops <= 0) return kNone;
  // T_stage = tau_s + mu alpha + (P - 1) alpha: startup, the packet
  // crossing its first link, then one alpha per additional relay hop
  // (the paper's T_IHC per-stage term for fault-free cut-through).
  return ix.tau_s + len * ix.alpha + (hops - 1) * ix.alpha;
}

}  // namespace ihc::obs::analyze
