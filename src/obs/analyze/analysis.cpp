/// \file analysis.cpp
/// \brief Critical path, utilization timelines and ihc-analysis-v1
/// serialization (TraceLint lives in lint.cpp, the reader in
/// trace_reader.cpp).
#include "obs/analyze/analysis.hpp"

#include <algorithm>
#include <cstdio>
#include <string_view>
#include <utility>

#include "obs/analyze/trace_index.hpp"
#include "util/stats.hpp"

namespace ihc::obs::analyze {

namespace {

/// Header arrival time/node at route position `pos` of one flow
/// (pos 0 is the injection at the origin).
struct PathPoint {
  SimTime ts = 0;
  std::int64_t node = kNone;
};

bool point_at(const FlowInfo& f, std::int64_t pos, PathPoint& out) {
  if (pos == 0) {
    out = {f.inject_ts, f.origin};
    return true;
  }
  for (const ArrivalRec& a : f.arrivals) {
    if (a.pos == pos) {
      out = {a.ts, a.node};
      return true;
    }
  }
  return false;
}

std::int64_t pos_of_node(const FlowInfo& f, std::int64_t node) {
  if (node == f.origin) return 0;
  for (const ArrivalRec& a : f.arrivals)
    if (a.node == node) return a.pos;
  return kNone;
}

const XmitRec* xmit_to(const FlowInfo& f, std::int64_t pos) {
  for (const XmitRec& x : f.xmits)
    if (x.pos == pos) return &x;
  return nullptr;
}

/// Decomposes one hop: header left `a` (arrival at the previous node)
/// and arrived at `b` via the transmission span `x`.  The identity
/// total == wire + queue + swtch + store holds for every kind (see
/// docs/ANALYSIS.md for the derivation from the simulator's timing).
void decompose_hop(const TraceIndex& ix, const FlowInfo& f, const XmitRec* x,
                   SimTime a, SimTime b, Hop& hop) {
  hop.total = b - a;
  if (x == nullptr) {  // no causality id: attribute everything to queueing
    hop.queue = hop.total;
    return;
  }
  const SimTime alpha = ix.alpha;
  const std::string_view kind = x->kind;
  if (kind == "inject") {
    hop.queue = x->start - a;   // transmitter busy (plus constant D)
    hop.swtch = b - x->start;   // tau_s startup until the header is out
  } else if (kind == "cut_through") {
    hop.wire = b - a;           // pure propagation: b == x->start + 0
  } else if (kind == "stall" && alpha != kNone) {
    hop.wire = alpha;               // header reached the switch
    hop.queue = x->start - a - alpha;  // stalled waiting for the link
    hop.swtch = b - x->start;          // retransmit restart (one alpha)
  } else if (kind == "saf" && alpha != kNone && f.len != kNone) {
    hop.store = f.len * alpha;  // full-packet store before relay
    hop.queue = x->start - a - hop.store;
    hop.swtch = b - x->start;   // tau_s restart
  } else {
    hop.queue = x->start - a;
    hop.swtch = b - x->start;
  }
}

CriticalPath critical_path(const TraceIndex& ix) {
  CriticalPath cp;
  // The critical flow: latest final tail arrival (ties: lowest id, so
  // the report is deterministic).
  std::int64_t flow_id = kNone;
  for (std::size_t id = 0; id < ix.flows.size(); ++id) {
    const FlowInfo& f = ix.flows[id];
    if (!f.injected || f.deliveries.empty()) continue;
    if (flow_id == kNone ||
        f.completion > ix.flows[static_cast<std::size_t>(flow_id)].completion)
      flow_id = static_cast<std::int64_t>(id);
  }
  if (flow_id == kNone) return cp;
  const FlowInfo& f = ix.flows[static_cast<std::size_t>(flow_id)];
  cp.flow = flow_id;
  cp.origin = f.origin;
  cp.route = f.route;
  cp.inject_ts = f.inject_ts;
  cp.finish_ts = f.completion;
  cp.total = cp.finish_ts - cp.inject_ts;

  // Terminal position: the delivery that finished last.
  const DeliveryRec* last = nullptr;
  for (const DeliveryRec& d : f.deliveries)
    if (last == nullptr || d.ts > last->ts) last = &d;
  std::int64_t pos = last->pos;
  if (pos == kNone) pos = pos_of_node(f, last->node);

  PathPoint terminal;
  if (pos != kNone && point_at(f, pos, terminal))
    cp.tail = cp.finish_ts - terminal.ts;  // len * alpha after the header

  // Walk the causality chain backwards: the header reached `pos` over
  // xmit_to(pos) from the node at the transmitting end of that link.
  while (pos != kNone && pos > 0) {
    PathPoint here;
    if (!point_at(f, pos, here)) break;
    const XmitRec* x = xmit_to(f, pos);
    Hop hop;
    hop.pos = pos;
    hop.node = here.node;
    hop.arrival = here.ts;
    std::int64_t prev = pos - 1;  // chain fallback (cycles are chains)
    if (x != nullptr) {
      hop.link = x->link;
      hop.kind = x->kind;
      if (x->link >= 0 &&
          x->link < static_cast<std::int64_t>(ix.link_src.size()) &&
          ix.link_src[static_cast<std::size_t>(x->link)] != kNone) {
        // Trees are not chains: recover the parent position from the
        // link's transmitting node.
        const std::int64_t p = pos_of_node(
            f, ix.link_src[static_cast<std::size_t>(x->link)]);
        if (p != kNone) prev = p;
      }
    }
    PathPoint from;
    if (!point_at(f, prev, from)) break;
    decompose_hop(ix, f, x, from.ts, here.ts, hop);
    cp.hops.push_back(std::move(hop));
    pos = prev;
  }
  std::reverse(cp.hops.begin(), cp.hops.end());
  for (const Hop& h : cp.hops) {
    cp.wire += h.wire;
    cp.queue += h.queue;
    cp.swtch += h.swtch;
    cp.store += h.store;
  }
  return cp;
}

std::vector<StageSummary> stage_summaries(const TraceIndex& ix) {
  std::vector<StageSummary> out;
  out.reserve(ix.stages.size());
  for (const StageRec& rec : ix.stages) {
    StageSummary s;
    s.stage = rec.stage;
    s.origin = rec.origin;
    s.label = rec.label;
    s.begin = rec.begin;
    s.end = rec.end;
    for (const std::int64_t id : stage_flows(ix, rec)) {
      const FlowInfo& f = ix.flows[static_cast<std::size_t>(id)];
      if (f.completion == kNone) continue;
      if (s.critical_flow == kNone || f.completion > s.critical_finish) {
        s.critical_flow = id;
        s.critical_finish = f.completion;
      }
    }
    s.model = stage_model(ix, rec);
    out.push_back(std::move(s));
  }
  return out;
}

Utilization utilization(const TraceIndex& ix, const Options& options) {
  Utilization u;
  u.horizon = std::max<SimTime>(ix.horizon, 1);
  const std::size_t windows = std::max<std::size_t>(options.windows, 1);
  // Ceiling division keeps window * windows >= horizon.
  u.window = (u.horizon + static_cast<SimTime>(windows) - 1) /
             static_cast<SimTime>(windows);
  if (u.window <= 0) u.window = 1;

  const std::size_t link_count =
      std::max<std::size_t>(ix.link_xmits.size(), ix.links);
  u.links.reserve(link_count);
  u.heat.assign(link_count, std::vector<double>(windows, 0.0));
  for (std::size_t l = 0; l < link_count; ++l) {
    LinkUtilization lu;
    lu.link = static_cast<std::int64_t>(l);
    if (l < ix.link_src.size()) {
      lu.src = ix.link_src[l];
      lu.dst = ix.link_dst[l];
    }
    SimTime busy = 0;
    if (l < ix.link_xmits.size()) {
      for (const XmitRec& x : ix.link_xmits[l]) {
        busy += x.end - x.start;
        ++lu.xmits;
        // Distribute the span over the windows it overlaps.
        const auto first = static_cast<std::size_t>(x.start / u.window);
        for (std::size_t w = first; w < windows; ++w) {
          const SimTime w0 = static_cast<SimTime>(w) * u.window;
          const SimTime w1 = w0 + u.window;
          if (x.start >= w1) continue;
          if (x.end <= w0) break;
          const SimTime overlap =
              std::min(x.end, w1) - std::max(x.start, w0);
          u.heat[l][w] += static_cast<double>(overlap) /
                          static_cast<double>(u.window);
        }
      }
    }
    lu.busy_fraction =
        static_cast<double>(busy) / static_cast<double>(u.horizon);
    u.mean_busy += lu.busy_fraction;
    u.max_busy = std::max(u.max_busy, lu.busy_fraction);
    u.links.push_back(lu);
  }
  if (!u.links.empty()) u.mean_busy /= static_cast<double>(u.links.size());

  u.timeline.reserve(windows);
  for (std::size_t w = 0; w < windows; ++w) {
    UtilizationWindow win;
    win.start = static_cast<SimTime>(w) * u.window;
    for (std::size_t l = 0; l < link_count; ++l) {
      win.mean_busy += u.heat[l][w];
      win.max_busy = std::max(win.max_busy, u.heat[l][w]);
    }
    if (link_count > 0) win.mean_busy /= static_cast<double>(link_count);
    const SimTime w1 = win.start + u.window;
    for (const StageRec& rec : ix.stages)
      if (rec.begin < w1 && rec.end > win.start) ++win.active_stages;
    u.timeline.push_back(win);
  }

  std::vector<double> depths;
  std::int64_t max_depth = 0;
  for (const BufferRec& b : ix.buffered) {
    depths.push_back(static_cast<double>(b.depth));
    max_depth = std::max(max_depth, b.depth);
  }
  for (const FifoOp& op : ix.fifo_ops) {
    if (!op.enqueue) continue;
    depths.push_back(static_cast<double>(op.depth));
    max_depth = std::max(max_depth, op.depth);
  }
  u.queue_depth.samples = depths.size();
  u.queue_depth.max = max_depth;
  if (!depths.empty()) {
    u.queue_depth.p50 = quantile(depths, 0.50);
    u.queue_depth.p90 = quantile(depths, 0.90);
    u.queue_depth.p99 = quantile(depths, 0.99);
  }
  return u;
}

Json opt_int(std::int64_t v) {
  return v == kNone ? Json(nullptr) : Json(v);
}

}  // namespace

Analysis analyze_trace(const std::vector<TraceEvent>& events,
                       const Options& options, std::size_t dropped) {
  const TraceIndex ix = build_index(events);
  Analysis a;
  a.timebase = ix.timebase;
  a.events = events.size();
  a.dropped = dropped;
  a.nodes = ix.nodes;
  a.links = ix.links;
  a.flows = ix.foreground_flows;
  a.alpha = ix.alpha;
  a.tau_s = ix.tau_s;
  a.critical = critical_path(ix);
  a.stages = stage_summaries(ix);
  a.util = utilization(ix, options);
  a.lint = run_lint(events, ix, options, dropped);
  return a;
}

Json to_json(const Analysis& a, const Json* source) {
  Json doc = Json::object();
  doc.set("schema", "ihc-analysis-v1");
  if (source != nullptr) doc.set("source", *source);

  Json trace = Json::object();
  trace.set("events", static_cast<std::uint64_t>(a.events));
  trace.set("dropped", static_cast<std::uint64_t>(a.dropped));
  trace.set("timebase", a.timebase == TimeBase::kCycles ? "cycles" : "ps");
  trace.set("nodes", static_cast<std::int64_t>(a.nodes));
  trace.set("links", static_cast<std::int64_t>(a.links));
  trace.set("flows", static_cast<std::uint64_t>(a.flows));
  trace.set("alpha_ps", opt_int(a.alpha));
  trace.set("tau_s_ps", opt_int(a.tau_s));
  doc.set("trace", std::move(trace));

  Json critical = Json::object();
  critical.set("flow", opt_int(a.critical.flow));
  critical.set("origin", opt_int(a.critical.origin));
  critical.set("route", opt_int(a.critical.route));
  critical.set("inject_ts", a.critical.inject_ts);
  critical.set("finish_ts", a.critical.finish_ts);
  critical.set("total", a.critical.total);
  critical.set("wire", a.critical.wire);
  critical.set("queue", a.critical.queue);
  critical.set("switch", a.critical.swtch);
  critical.set("store", a.critical.store);
  critical.set("tail", a.critical.tail);
  Json hops = Json::array();
  for (const Hop& h : a.critical.hops) {
    Json hop = Json::object();
    hop.set("pos", opt_int(h.pos));
    hop.set("node", opt_int(h.node));
    hop.set("link", opt_int(h.link));
    hop.set("kind", h.kind);
    hop.set("arrival", h.arrival);
    hop.set("total", h.total);
    hop.set("wire", h.wire);
    hop.set("queue", h.queue);
    hop.set("switch", h.swtch);
    hop.set("store", h.store);
    hops.push(std::move(hop));
  }
  critical.set("hops", std::move(hops));
  doc.set("critical_path", std::move(critical));

  Json stages = Json::array();
  for (const StageSummary& s : a.stages) {
    Json stage = Json::object();
    stage.set("stage", opt_int(s.stage));
    stage.set("origin", opt_int(s.origin));
    stage.set("label", s.label);
    stage.set("begin", s.begin);
    stage.set("end", s.end);
    stage.set("duration", s.end - s.begin);
    stage.set("critical_flow", opt_int(s.critical_flow));
    stage.set("critical_finish", s.critical_finish);
    stage.set("model", opt_int(s.model));
    stage.set("model_delta",
              s.model == kNone ? Json(nullptr)
                               : Json((s.end - s.begin) - s.model));
    stages.push(std::move(stage));
  }
  doc.set("stages", std::move(stages));

  Json util = Json::object();
  util.set("horizon", a.util.horizon);
  util.set("window", a.util.window);
  util.set("windows", static_cast<std::uint64_t>(a.util.timeline.size()));
  util.set("mean_busy_fraction", a.util.mean_busy);
  util.set("max_busy_fraction", a.util.max_busy);
  Json links = Json::array();
  for (const LinkUtilization& lu : a.util.links) {
    Json link = Json::object();
    link.set("link", lu.link);
    link.set("src", opt_int(lu.src));
    link.set("dst", opt_int(lu.dst));
    link.set("busy_fraction", lu.busy_fraction);
    link.set("xmits", lu.xmits);
    links.push(std::move(link));
  }
  util.set("links", std::move(links));
  Json timeline = Json::array();
  for (const UtilizationWindow& w : a.util.timeline) {
    Json win = Json::object();
    win.set("start", w.start);
    win.set("mean_busy", w.mean_busy);
    win.set("max_busy", w.max_busy);
    win.set("active_stages", static_cast<std::int64_t>(w.active_stages));
    timeline.push(std::move(win));
  }
  util.set("timeline", std::move(timeline));
  Json depth = Json::object();
  depth.set("samples", static_cast<std::uint64_t>(a.util.queue_depth.samples));
  depth.set("p50", a.util.queue_depth.p50);
  depth.set("p90", a.util.queue_depth.p90);
  depth.set("p99", a.util.queue_depth.p99);
  depth.set("max", a.util.queue_depth.max);
  util.set("queue_depth", std::move(depth));
  doc.set("utilization", std::move(util));

  Json lint = Json::object();
  lint.set("ok", a.lint.ok());
  Json run = Json::array();
  for (const std::string& check : a.lint.checks_run) run.push(check);
  lint.set("checks_run", std::move(run));
  Json skipped = Json::array();
  for (const LintSkipped& s : a.lint.skipped) {
    skipped.push(Json::object().set("check", s.check)
                     .set("reason", s.reason));
  }
  lint.set("skipped", std::move(skipped));
  Json violations = Json::array();
  for (const LintViolation& v : a.lint.violations) {
    violations.push(Json::object().set("check", v.check)
                        .set("message", v.message));
  }
  lint.set("violations", std::move(violations));
  doc.set("lint", std::move(lint));
  return doc;
}

Json trial_summary_json(const Analysis& a) {
  Json doc = Json::object();
  doc.set("events", static_cast<std::uint64_t>(a.events));
  doc.set("dropped", static_cast<std::uint64_t>(a.dropped));
  doc.set("critical_flow", opt_int(a.critical.flow));
  doc.set("critical_total", a.critical.total);
  doc.set("wire", a.critical.wire);
  doc.set("queue", a.critical.queue);
  doc.set("switch", a.critical.swtch);
  doc.set("store", a.critical.store);
  doc.set("hops", static_cast<std::uint64_t>(a.critical.hops.size()));
  doc.set("mean_busy_fraction", a.util.mean_busy);
  doc.set("max_busy_fraction", a.util.max_busy);
  doc.set("lint_ok", a.lint.ok());
  doc.set("lint_violations",
          static_cast<std::uint64_t>(a.lint.violations.size()));
  doc.set("lint_skipped", static_cast<std::uint64_t>(a.lint.skipped.size()));
  return doc;
}

std::string ascii_heatmap(const Analysis& a, const Options& options) {
  const Utilization& u = a.util;
  if (u.heat.empty() || u.timeline.empty())
    return "no link activity in the trace\n";
  const std::size_t windows = u.timeline.size();
  // Shade buckets: ' ' is idle, '@' is a saturated window.
  static constexpr char kShades[] = " .:-=+*#%@";
  auto shade = [](double fraction) {
    int level = static_cast<int>(fraction * 10.0);
    level = std::clamp(level, 0, 9);
    return kShades[level];
  };

  std::string out;
  char line[160];
  std::snprintf(line, sizeof line,
                "link-utilization heatmap: %zu windows x %lld %s "
                "(horizon %lld)\n",
                windows, static_cast<long long>(u.window),
                a.timebase == TimeBase::kCycles ? "cycles" : "ps",
                static_cast<long long>(u.horizon));
  out += line;

  // Busiest links first; ties break on link id for determinism.
  std::vector<std::size_t> order(u.links.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    if (u.links[x].busy_fraction != u.links[y].busy_fraction)
      return u.links[x].busy_fraction > u.links[y].busy_fraction;
    return x < y;
  });
  const std::size_t rows =
      std::min<std::size_t>(options.heatmap_rows, order.size());
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t l = order[r];
    const LinkUtilization& lu = u.links[l];
    std::string label;
    if (lu.src != kNone && lu.dst != kNone)
      label = std::to_string(lu.src) + "->" + std::to_string(lu.dst);
    std::snprintf(line, sizeof line, "link %4lld %9s %5.3f |",
                  static_cast<long long>(lu.link), label.c_str(),
                  lu.busy_fraction);
    out += line;
    for (std::size_t w = 0; w < windows; ++w)
      out += shade(l < u.heat.size() ? u.heat[l][w] : 0.0);
    out += "|\n";
  }
  if (order.size() > rows) {
    std::snprintf(line, sizeof line, "  (%zu more links not shown)\n",
                  order.size() - rows);
    out += line;
  }

  std::snprintf(line, sizeof line, "mean over links %9s %5.3f |", "",
                u.mean_busy);
  out += line;
  for (const UtilizationWindow& w : u.timeline) out += shade(w.mean_busy);
  out += "|\n";

  out += "active stages              |";
  for (const UtilizationWindow& w : u.timeline) {
    const std::uint32_t n = w.active_stages;
    out += n == 0 ? ' ' : static_cast<char>('0' + std::min(n, 9u));
  }
  out += "|\nscale: ' ' idle, '.' <20%, '-' <40%, '+' <60%, '#' <80%, "
         "'@' >=90% busy\n";
  return out;
}

}  // namespace ihc::obs::analyze
