/// \file trace_reader.cpp
/// \brief Loads ChromeTraceSink JSON documents back into TraceEvent
/// vectors so saved traces can be analyzed offline (`ihc_cli analyze
/// --trace file`).
///
/// Event names are interned against the fixed ihc-trace-v1 vocabulary
/// (TraceEvent carries const char* names); an unknown name is a schema
/// error.  Picosecond stamps round-trip exactly: the sink writes
/// ts / 1e6 as a shortest-round-trip double, and llround(ts * 1e6)
/// recovers the integer for any horizon below ~2^53 / 1e6 seconds.
#include <cmath>
#include <fstream>
#include <sstream>
#include <string_view>

#include "obs/analyze/analysis.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace ihc::obs::analyze {

namespace {

struct NameInfo {
  const char* name;
  const char* cat;
  const char* detail_key;  ///< Chrome args key holding `detail`
};

const NameInfo* lookup(std::string_view name) {
  static constexpr NameInfo kNames[] = {
      {"packet_injected", "packet", "detail"},
      {"header_advanced", "packet", "detail"},
      {"delivered", "packet", "detail"},
      {"xmit", "link", "kind"},
      {"buffered", "fifo", "detail"},
      {"stalled", "packet", "detail"},
      {"fault_fired", "fault", "action"},
      {"link_dropped", "fault", "detail"},
      {"stage", "stage", "label"},
      {"session_arrive", "workload", "detail"},
      {"session_reject", "workload", "detail"},
      {"session", "workload", "detail"},
      {"fifo_enqueue", "fifo", "detail"},
      {"fifo_dequeue", "fifo", "detail"},
      {"flit_blocked", "flit", "reason"},
      {"process_name", "", "name"},
      {"thread_name", "", "name"},
  };
  for (const NameInfo& info : kNames)
    if (name == info.name) return &info;
  return nullptr;
}

bool is_flit_event(std::string_view name) {
  return name == "fifo_enqueue" || name == "fifo_dequeue" ||
         name == "flit_blocked";
}

std::int64_t int_arg(const Json& args, const char* key) {
  const Json* v = args.find(key);
  if (v == nullptr || !v->is_number()) return TraceEvent::kUnset;
  return v->as_int();
}

}  // namespace

std::vector<TraceEvent> parse_trace_json(std::string_view text) {
  std::string error;
  const auto doc = Json::parse(text, &error);
  require(doc.has_value(), "trace is not valid JSON: " + error);
  const Json* other = doc->find("otherData");
  const Json* schema = other != nullptr ? other->find("schema") : nullptr;
  require(schema != nullptr && schema->is_string() &&
              schema->as_string() == "ihc-trace-v1",
          "trace document is not tagged ihc-trace-v1");
  const Json* events = doc->find("traceEvents");
  require(events != nullptr && events->is_array(),
          "trace document has no traceEvents array");

  // The sink emits flit-cycle stamps as integers and picosecond stamps
  // as microsecond doubles; the vocabulary decides which run this was.
  bool cycles = false;
  for (const Json& e : events->items()) {
    const Json* name = e.find("name");
    if (name != nullptr && name->is_string() &&
        is_flit_event(name->as_string())) {
      cycles = true;
      break;
    }
  }
  auto to_sim = [cycles](const Json& v) -> SimTime {
    if (cycles) return v.as_int();
    return std::llround(v.as_double() * 1e6);
  };

  std::vector<TraceEvent> out;
  out.reserve(events->items().size());
  for (const Json& e : events->items()) {
    require(e.is_object(), "traceEvents entry is not an object");
    const Json* name = e.find("name");
    require(name != nullptr && name->is_string(),
            "traceEvents entry has no name");
    const NameInfo* info = lookup(name->as_string());
    require(info != nullptr, "unknown trace event '" +
                                 std::string(name->as_string()) + "'");
    const Json* ph = e.find("ph");
    require(ph != nullptr && ph->is_string(),
            "traceEvents entry has no phase");

    TraceEvent ev;
    ev.name = info->name;
    ev.timebase = cycles ? TimeBase::kCycles : TimeBase::kPicoseconds;
    if (const Json* tid = e.find("tid"); tid != nullptr && tid->is_number())
      ev.track = static_cast<std::uint32_t>(tid->as_int());
    const Json* args = e.find("args");

    if (ph->as_string() == "M") {
      ev.phase = TraceEvent::Phase::kMetadata;
      if (args != nullptr) {
        if (const Json* label = args->find("name");
            label != nullptr && label->is_string())
          ev.detail = std::string(label->as_string());
      }
      out.push_back(std::move(ev));
      continue;
    }

    ev.cat = info->cat;
    ev.phase = ph->as_string() == "X" ? TraceEvent::Phase::kSpan
                                      : TraceEvent::Phase::kInstant;
    const Json* ts = e.find("ts");
    require(ts != nullptr && ts->is_number(),
            "traceEvents entry has no timestamp");
    ev.ts = to_sim(*ts);
    if (ev.phase == TraceEvent::Phase::kSpan) {
      const Json* dur = e.find("dur");
      require(dur != nullptr && dur->is_number(), "span event has no dur");
      ev.dur = to_sim(*dur);
    }
    if (args != nullptr && args->is_object()) {
      ev.flow = int_arg(*args, "flow");
      ev.node = int_arg(*args, "node");
      ev.link = int_arg(*args, "link");
      ev.origin = int_arg(*args, "origin");
      ev.route = int_arg(*args, "route");
      ev.pos = int_arg(*args, "pos");
      ev.len = int_arg(*args, "len");
      ev.depth = int_arg(*args, "depth");
      ev.stage = int_arg(*args, "stage");
      ev.vc = int_arg(*args, "vc");
      if (const Json* detail = args->find(info->detail_key);
          detail != nullptr && detail->is_string())
        ev.detail = std::string(detail->as_string());
    }
    out.push_back(std::move(ev));
  }
  return out;
}

std::vector<TraceEvent> read_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "cannot open trace file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_trace_json(buffer.str());
}

}  // namespace ihc::obs::analyze
