/// \file lint.cpp
/// \brief TraceLint: machine checks of the paper's correctness
/// properties against an ihc-trace-v1 stream (docs/ANALYSIS.md).
#include <algorithm>
#include <cstdlib>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/analyze/trace_index.hpp"

namespace ihc::obs::analyze {

namespace {

constexpr std::size_t kMaxViolationsPerCheck = 16;

std::string flow_tag(std::size_t id, const FlowInfo& f) {
  return "flow " + std::to_string(id) + " (origin " +
         std::to_string(f.origin) + ", route " + std::to_string(f.route) +
         ")";
}

class Lint {
 public:
  Lint(const std::vector<TraceEvent>& events, const TraceIndex& ix,
       const Options& options, std::size_t dropped)
      : events_(events), ix_(ix), options_(options), dropped_(dropped) {}

  LintResult run() {
    schema_valid();
    delivery_completeness();
    origin_completeness();
    fifo_ordering();
    buffer_bound();
    fault_silence();
    stage_closed_form();
    session_conservation();
    return std::move(result_);
  }

 private:
  void mark_run(const char* check) { result_.checks_run.emplace_back(check); }
  void skip(const char* check, std::string reason) {
    result_.skipped.push_back({check, std::move(reason)});
  }
  void violation(const char* check, std::string message) {
    std::size_t count = 0;
    for (const LintViolation& v : result_.violations)
      if (v.check == check) ++count;
    if (count >= kMaxViolationsPerCheck) return;  // keep reports readable
    result_.violations.push_back({check, std::move(message)});
  }
  [[nodiscard]] bool truncated() const { return dropped_ > 0; }
  static constexpr const char* kTruncated =
      "trace truncated by the bounded CollectingSink";

  /// Every event must satisfy the ihc-trace-v1 schema (file-loaded
  /// traces were not validated at emit time).
  void schema_valid() {
    mark_run("schema_valid");
    for (std::size_t i = 0; i < events_.size(); ++i) {
      const std::string reason = validate_event(events_[i]);
      if (!reason.empty())
        violation("schema_valid",
                  "event #" + std::to_string(i) + ": " + reason);
    }
  }

  /// Paper property: every node receives every other node's message -
  /// each uncompromised foreground flow tees a copy to all N-1 non-origin
  /// nodes of its Hamiltonian cycle, exactly once each.
  void delivery_completeness() {
    const char* check = "delivery_completeness";
    if (truncated()) return skip(check, kTruncated);
    if (ix_.foreground_flows == 0)
      return skip(check, "no foreground flows in the trace");
    if (ix_.nodes == 0) return skip(check, "no topology metadata");
    mark_run(check);
    // Escalated-recovery flows (docs/FAULTS.md) legitimately cover less
    // than the full topology: re-rooted flows broadcast on the survivor
    // subgraph (dead nodes are excluded from the fresh cycles, with no
    // fault event recording the omission), and node-disjoint-path
    // fallback flows are unicasts delivering only along their path.  The
    // all-nodes requirement does not apply to either (origin_completeness
    // still audits the union across the origin's flows).  They are
    // recognized by injection inside a "recovery_reroot" /
    // "recovery_paths" stage span.
    const auto is_escalated_recovery = [this](const FlowInfo& f) {
      for (const StageRec& s : ix_.stages)
        if ((s.label == "recovery_reroot" || s.label == "recovery_paths") &&
            f.inject_ts >= s.begin && f.inject_ts < s.end)
          return true;
      return false;
    };
    std::vector<std::uint8_t> copies(ix_.nodes, 0);
    for (std::size_t id = 0; id < ix_.flows.size(); ++id) {
      const FlowInfo& f = ix_.flows[id];
      if (!f.injected) continue;
      std::fill(copies.begin(), copies.end(), std::uint8_t{0});
      std::size_t distinct = 0;
      for (const DeliveryRec& d : f.deliveries) {
        if (d.node < 0 || d.node >= static_cast<std::int64_t>(ix_.nodes)) {
          violation(check, flow_tag(id, f) + " delivered to node " +
                               std::to_string(d.node) +
                               " outside the topology");
          continue;
        }
        if (d.node == f.origin)
          violation(check, flow_tag(id, f) + " delivered to its own origin");
        auto& c = copies[static_cast<std::size_t>(d.node)];
        if (c++ != 0) {
          violation(check, flow_tag(id, f) + " delivered to node " +
                               std::to_string(d.node) + " more than once");
        } else {
          ++distinct;
        }
      }
      const bool compromised = f.kill_pos != kNone ||
                               std::any_of(f.faults.begin(), f.faults.end(),
                                           [](const FaultRec& r) {
                                             return r.kills;
                                           });
      if (!compromised && distinct != ix_.nodes - 1 &&
          !is_escalated_recovery(f))
        violation(check, flow_tag(id, f) + " delivered to " +
                             std::to_string(distinct) + " of " +
                             std::to_string(ix_.nodes - 1) + " nodes");
    }
  }

  /// Fault-window-aware completeness: with faults present, individual
  /// flows legitimately die, but across ALL of one origin's flows -
  /// redundant cycles, retransmissions, recovery reissues - every other
  /// node must still receive that origin's message.  This is the
  /// invariant the recovery layer (docs/FAULTS.md) restores after a
  /// mid-broadcast link death, and it is checkable exactly when
  /// per-flow delivery_completeness is not.
  void origin_completeness() {
    const char* check = "origin_completeness";
    if (truncated()) return skip(check, kTruncated);
    if (!ix_.has_fault)
      return skip(check, "no fault events; per-flow completeness covers it");
    if (ix_.foreground_flows == 0)
      return skip(check, "no foreground flows in the trace");
    if (ix_.nodes == 0) return skip(check, "no topology metadata");
    mark_run(check);
    // reached[origin * nodes + node] - the union over the origin's flows.
    std::vector<std::uint8_t> reached(ix_.nodes * ix_.nodes, 0);
    std::vector<std::uint8_t> has_origin(ix_.nodes, 0);
    for (const FlowInfo& f : ix_.flows) {
      if (!f.injected) continue;
      if (f.origin < 0 || f.origin >= static_cast<std::int64_t>(ix_.nodes))
        continue;  // delivery_completeness flags out-of-range coordinates
      const auto o = static_cast<std::size_t>(f.origin);
      has_origin[o] = 1;
      for (const DeliveryRec& d : f.deliveries) {
        if (d.node < 0 || d.node >= static_cast<std::int64_t>(ix_.nodes))
          continue;
        reached[o * ix_.nodes + static_cast<std::size_t>(d.node)] = 1;
      }
    }
    for (std::size_t o = 0; o < ix_.nodes; ++o) {
      if (has_origin[o] == 0) continue;
      std::size_t missing = 0;
      std::string sample;
      for (std::size_t d = 0; d < ix_.nodes; ++d) {
        if (d == o || reached[o * ix_.nodes + d] != 0) continue;
        if (missing == 0) sample = std::to_string(d);
        ++missing;
      }
      if (missing > 0)
        violation(check, "origin " + std::to_string(o) + ": " +
                             std::to_string(missing) + " of " +
                             std::to_string(ix_.nodes - 1) +
                             " nodes never received its message across "
                             "any flow (first: node " +
                             sample + ")");
    }
  }

  /// Per-link FIFO ordering: a directed link transmits one packet at a
  /// time (packet level: xmit spans never overlap; flit level: each
  /// (link, vc) FIFO dequeues in enqueue order).
  void fifo_ordering() {
    const char* check = "fifo_ordering";
    if (truncated()) return skip(check, kTruncated);
    mark_run(check);
    std::vector<std::pair<SimTime, SimTime>> spans;
    for (std::size_t l = 0; l < ix_.link_xmits.size(); ++l) {
      spans.clear();
      for (const XmitRec& x : ix_.link_xmits[l])
        spans.emplace_back(x.start, x.end);
      std::sort(spans.begin(), spans.end());
      for (std::size_t i = 1; i < spans.size(); ++i) {
        if (spans[i].first < spans[i - 1].second)
          violation(check,
                    "link " + std::to_string(l) + ": xmit [" +
                        std::to_string(spans[i].first) + ", " +
                        std::to_string(spans[i].second) + "] overlaps [" +
                        std::to_string(spans[i - 1].first) + ", " +
                        std::to_string(spans[i - 1].second) + "]");
      }
    }
    // Flit-level replay: FIFO per (link, vc).
    std::map<std::pair<std::int64_t, std::int64_t>, std::deque<std::int64_t>>
        fifos;
    for (const FifoOp& op : ix_.fifo_ops) {
      auto& q = fifos[{op.link, op.vc}];
      if (op.enqueue) {
        q.push_back(op.packet);
      } else if (q.empty() || q.front() != op.packet) {
        violation(check, "link " + std::to_string(op.link) + " vc " +
                             std::to_string(op.vc) + ": packet " +
                             std::to_string(op.packet) +
                             " dequeued out of FIFO order");
        if (!q.empty()) q.pop_front();
      } else {
        q.pop_front();
      }
    }
  }

  /// Paper property: intermediate storage stays within the derived bound
  /// (a node can hold at most one stored packet per incoming link).
  /// Depth stamps are valid per event, so this runs even on truncated
  /// traces.  The derived bound is a dedicated-mode property: background
  /// traffic forms convoys (EXPERIMENTS.md E8) that legitimately exceed
  /// it, so it only applies to an explicitly configured bound then.
  void buffer_bound() {
    const char* check = "buffer_bound";
    const bool derived = options_.buffer_bound < 0;
    if (derived && ix_.nodes == 0)
      return skip(check, "no topology metadata to derive the bound");
    if (derived && ix_.has_background)
      return skip(check, "background traffic lifts the dedicated-mode bound");
    if (derived && ix_.has_workload)
      return skip(check,
                  "streaming workload traffic lifts the dedicated-mode bound");
    mark_run(check);
    for (const BufferRec& b : ix_.buffered) {
      const std::int64_t bound =
          derived ? ix_.in_degree(b.node) : options_.buffer_bound;
      if (bound == kNone) continue;
      if (b.depth > bound)
        violation(check, "node " + std::to_string(b.node) +
                             ": buffer depth " + std::to_string(b.depth) +
                             " exceeds bound " + std::to_string(bound) +
                             " (flow " + std::to_string(b.flow) + ")");
    }
    if (!derived) {
      for (const FifoOp& op : ix_.fifo_ops)
        if (op.enqueue && op.depth > options_.buffer_bound)
          violation(check, "link " + std::to_string(op.link) + " vc " +
                               std::to_string(op.vc) + ": FIFO depth " +
                               std::to_string(op.depth) + " exceeds bound " +
                               std::to_string(options_.buffer_bound));
    }
  }

  /// Faulty drops are terminal: once a copy is dropped at route position
  /// p, no event of that flow may occur at a later position.
  void fault_silence() {
    const char* check = "fault_silence";
    if (truncated()) return skip(check, kTruncated);
    mark_run(check);
    for (std::size_t id = 0; id < ix_.flows.size(); ++id) {
      const FlowInfo& f = ix_.flows[id];
      if (f.kill_pos == kNone) continue;
      auto offend = [&](const char* what, std::int64_t pos) {
        if (pos != kNone && pos > f.kill_pos)
          violation(check, flow_tag(id, f) + " " + what + " at pos " +
                               std::to_string(pos) +
                               " after its drop at pos " +
                               std::to_string(f.kill_pos));
      };
      for (const ArrivalRec& a : f.arrivals) offend("advanced", a.pos);
      for (const DeliveryRec& d : f.deliveries) offend("delivered", d.pos);
      for (const XmitRec& x : f.xmits) offend("transmitted", x.pos);
    }
  }

  /// Paper property: fault-free cut-through stage time matches the
  /// closed form T_stage = tau_s + mu alpha + (P - 1) alpha within one
  /// header cycle alpha.
  void stage_closed_form() {
    const char* check = "stage_closed_form";
    if (truncated()) return skip(check, kTruncated);
    if (ix_.stages.empty())
      return skip(check, "no stage spans in the trace");
    if (ix_.timebase != TimeBase::kPicoseconds)
      return skip(check, "cycle-timebase trace has no closed-form model");
    if (ix_.has_fault) return skip(check, "fault events present");
    if (ix_.has_background)
      return skip(check, "background traffic perturbs the closed form");
    if (ix_.has_foreground_saf || !ix_.buffered.empty())
      return skip(check, "buffered or stalled relays present");
    if (ix_.alpha == kNone || ix_.tau_s == kNone)
      return skip(check, "alpha / tau_s not derivable from the trace");
    mark_run(check);
    for (const StageRec& rec : ix_.stages) {
      const SimTime model = stage_model(ix_, rec);
      if (model == kNone) continue;
      const SimTime measured = rec.end - rec.begin;
      if (std::llabs(measured - model) > ix_.alpha)
        violation(check,
                  "stage " + std::to_string(rec.stage) + ": measured " +
                      std::to_string(measured) + " ps vs closed-form " +
                      std::to_string(model) + " ps (tolerance alpha = " +
                      std::to_string(ix_.alpha) + " ps)");
    }
  }

  /// Workload-engine invariant: every session id arrives exactly once and
  /// is then either rejected at admission XOR served to completion (or
  /// still in flight at drain - no terminal event).  A session that
  /// terminates without arriving, arrives twice, or both completes and
  /// rejects would break the engine's conservation law
  /// offered = completed + rejected + inflight_at_drain.
  void session_conservation() {
    const char* check = "session_conservation";
    if (!ix_.has_workload)
      return skip(check, "no workload session events in the trace");
    if (truncated()) return skip(check, kTruncated);
    mark_run(check);
    struct Tally {
      std::size_t arrives = 0, rejects = 0, completes = 0;
      SimTime arrive_ts = 0, terminal_ts = 0;
      std::int64_t origin = kNone;
      bool origin_conflict = false;
    };
    std::map<std::int64_t, Tally> tally;
    for (const SessionOp& op : ix_.sessions) {
      Tally& t = tally[op.session];
      if (t.origin == kNone) {
        t.origin = op.origin;
      } else if (op.origin != t.origin) {
        t.origin_conflict = true;
      }
      if (op.kind == "arrive") {
        ++t.arrives;
        t.arrive_ts = op.ts;
      } else if (op.kind == "reject") {
        ++t.rejects;
        t.terminal_ts = op.ts;
      } else {
        ++t.completes;
        t.terminal_ts = op.end;
      }
    }
    for (const auto& [id, t] : tally) {
      const std::string tag = "session " + std::to_string(id);
      if (t.arrives == 0)
        violation(check, tag + " was rejected or completed without a "
                             "session_arrive event");
      if (t.arrives > 1)
        violation(check,
                  tag + " arrived " + std::to_string(t.arrives) + " times");
      if (t.rejects > 0 && t.completes > 0)
        violation(check, tag + " was both rejected and completed");
      if (t.rejects > 1)
        violation(check,
                  tag + " rejected " + std::to_string(t.rejects) + " times");
      if (t.completes > 1)
        violation(check, tag + " completed " +
                             std::to_string(t.completes) + " times");
      if (t.origin_conflict)
        violation(check, tag + " changed origin between its events");
      if (t.arrives == 1 && t.rejects + t.completes == 1 &&
          t.terminal_ts < t.arrive_ts)
        violation(check, tag + " terminated at " +
                             std::to_string(t.terminal_ts) +
                             " ps before arriving at " +
                             std::to_string(t.arrive_ts) + " ps");
    }
  }

  const std::vector<TraceEvent>& events_;
  const TraceIndex& ix_;
  const Options& options_;
  std::size_t dropped_;
  LintResult result_;
};

}  // namespace

LintResult run_lint(const std::vector<TraceEvent>& events,
                    const TraceIndex& ix, const Options& options,
                    std::size_t dropped) {
  return Lint(events, ix, options, dropped).run();
}

}  // namespace ihc::obs::analyze
