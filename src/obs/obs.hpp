/// \file obs.hpp
/// \brief Umbrella header for the observability layer (see
/// docs/TRACING.md and docs/ARCHITECTURE.md).
#pragma once

#include "obs/analyze/analysis.hpp"  // IWYU pragma: export
#include "obs/metrics.hpp"           // IWYU pragma: export
#include "obs/prof/profiler.hpp"     // IWYU pragma: export
#include "obs/trace.hpp"             // IWYU pragma: export
