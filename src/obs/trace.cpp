#include "obs/trace.hpp"

#include <algorithm>
#include <initializer_list>
#include <ostream>
#include <string_view>
#include <utility>

#include "util/error.hpp"
#include "util/json.hpp"

namespace ihc::obs {

namespace {

using Phase = TraceEvent::Phase;

template <typename Range>
bool is_one_of(std::string_view s, const Range& v) {
  for (const std::string_view x : v)
    if (s == x) return true;
  return false;
}

bool is_one_of(std::string_view s, std::initializer_list<std::string_view> v) {
  return is_one_of<std::initializer_list<std::string_view>>(s, v);
}

bool set(std::int64_t field) { return field != TraceEvent::kUnset; }

/// Chrome args key for the event's `detail` string.
const char* detail_key(std::string_view name) {
  if (name == "xmit") return "kind";
  if (name == "fault_fired") return "action";
  if (name == "flit_blocked") return "reason";
  if (name == "stage") return "label";
  return "detail";
}

}  // namespace

std::string validate_event(const TraceEvent& e) {
  const std::string_view name = e.name;
  if (e.ts < 0) return "negative timestamp";
  if (e.dur < 0) return "negative duration";

  if (e.phase == Phase::kMetadata) {
    if (!is_one_of(name, {"process_name", "thread_name"}))
      return "unknown metadata event '" + std::string(name) + "'";
    if (e.detail.empty()) return "metadata event needs a name in detail";
    return {};
  }
  if (name.empty()) return "event needs a name";

  struct Rule {
    std::string_view name;
    std::string_view cat;  ///< the name determines the category
    Phase phase;
    // Required integer fields (pointers-to-member keep the table terse).
    std::vector<std::int64_t TraceEvent::*> required;
    std::vector<std::string_view> details;  // empty = free-form
  };
  static const std::vector<Rule> rules = {
      {"packet_injected", "packet", Phase::kInstant,
       {&TraceEvent::flow, &TraceEvent::origin, &TraceEvent::route,
        &TraceEvent::len}, {}},
      {"header_advanced", "packet", Phase::kInstant,
       {&TraceEvent::flow, &TraceEvent::node, &TraceEvent::pos}, {}},
      {"delivered", "packet", Phase::kInstant,
       {&TraceEvent::flow, &TraceEvent::node, &TraceEvent::origin,
        &TraceEvent::route}, {}},
      {"xmit", "link", Phase::kSpan, {&TraceEvent::link},
       {"inject", "cut_through", "stall", "saf", "background"}},
      {"buffered", "fifo", Phase::kSpan,
       {&TraceEvent::node, &TraceEvent::flow, &TraceEvent::depth}, {}},
      {"stalled", "packet", Phase::kSpan,
       {&TraceEvent::node, &TraceEvent::flow}, {}},
      {"fault_fired", "fault", Phase::kInstant,
       {&TraceEvent::node, &TraceEvent::flow}, {"drop", "corrupt", "delay"}},
      {"link_dropped", "fault", Phase::kInstant,
       {&TraceEvent::node, &TraceEvent::flow, &TraceEvent::link}, {}},
      {"stage", "stage", Phase::kSpan, {}, {}},
      {"session_arrive", "workload", Phase::kInstant,
       {&TraceEvent::stage, &TraceEvent::origin}, {}},
      {"session_reject", "workload", Phase::kInstant,
       {&TraceEvent::stage, &TraceEvent::origin, &TraceEvent::depth}, {}},
      {"session", "workload", Phase::kSpan,
       {&TraceEvent::stage, &TraceEvent::origin, &TraceEvent::len}, {}},
      {"fifo_enqueue", "fifo", Phase::kInstant,
       {&TraceEvent::link, &TraceEvent::vc, &TraceEvent::flow,
        &TraceEvent::pos, &TraceEvent::depth}, {}},
      {"fifo_dequeue", "fifo", Phase::kInstant,
       {&TraceEvent::link, &TraceEvent::vc, &TraceEvent::flow,
        &TraceEvent::pos, &TraceEvent::depth}, {}},
      {"flit_blocked", "flit", Phase::kInstant,
       {&TraceEvent::link, &TraceEvent::vc, &TraceEvent::flow,
        &TraceEvent::pos},
       {"fifo_full", "channel_owned", "link_dead", "slow_node"}},
      // Host wall-clock span from the profiler's Chrome export
      // (obs/prof/profiler.hpp); ts/dur are steady-clock nanoseconds
      // rendered through the picosecond path, not simulated time.
      {"host_phase", "prof", Phase::kSpan, {}, {}},
  };
  for (const Rule& rule : rules) {
    if (rule.name != name) continue;
    if (e.phase != rule.phase)
      return std::string(name) + ": wrong phase";
    // The category is a function of the name, so leaving it unset is
    // fine for validation purposes; a mismatch is not.
    if (const std::string_view cat = e.cat; !cat.empty() && cat != rule.cat)
      return std::string(name) + ": category must be '" +
             std::string(rule.cat) + "'";
    for (const auto field : rule.required)
      if (!set(e.*field))
        return std::string(name) + ": missing required field";
    if (rule.details.size() != 0 && !is_one_of(e.detail, rule.details))
      return std::string(name) + ": invalid detail '" + e.detail + "'";
    if ((name == "stage" || name == "host_phase") && e.detail.empty())
      return std::string(name) + ": needs a label in detail";
    return {};
  }
  return "unknown event '" + std::string(name) + "'";
}

// --- CollectingSink --------------------------------------------------------

void CollectingSink::event(const TraceEvent& e) {
  if (max_events_ == 0 || events_.size() < max_events_) {
    events_.push_back(e);
    return;
  }
  events_[head_] = e;
  head_ = (head_ + 1) % max_events_;
  ++dropped_;
}

const std::vector<TraceEvent>& CollectingSink::events() const {
  if (head_ != 0) {
    std::rotate(events_.begin(),
                events_.begin() + static_cast<std::ptrdiff_t>(head_),
                events_.end());
    head_ = 0;  // subsequent writes keep overwriting oldest-first
  }
  return events_;
}

// --- ChromeTraceSink -------------------------------------------------------

ChromeTraceSink::ChromeTraceSink(std::ostream& out) : out_(&out) {
  *out_ << "{\"displayTimeUnit\": \"ns\",\n"
           "\"otherData\": {\"schema\": \"ihc-trace-v1\"},\n"
           "\"traceEvents\": [";
}

ChromeTraceSink::~ChromeTraceSink() { close(); }

void ChromeTraceSink::close() {
  if (closed_) return;
  closed_ = true;
  *out_ << "\n]}\n";
  out_->flush();
}

void ChromeTraceSink::event(const TraceEvent& e) {
  IHC_ENSURE(!closed_, "trace sink already closed");
  Json doc = Json::object();
  if (e.phase == Phase::kMetadata) {
    doc.set("name", e.name);
    doc.set("ph", "M");
    doc.set("pid", 0);
    doc.set("tid", static_cast<std::int64_t>(e.track));
    doc.set("args", Json::object().set("name", e.detail));
  } else {
    doc.set("name", e.name);
    doc.set("cat", e.cat);
    if (e.phase == Phase::kSpan) {
      doc.set("ph", "X");
    } else {
      doc.set("ph", "i");
      doc.set("s", "t");
    }
    // Chrome timestamps are microseconds.  Picosecond stamps are scaled;
    // flit-cycle stamps are emitted as-is (1 cycle renders as 1 us).
    auto chrome_ts = [&](SimTime t) -> Json {
      if (e.timebase == TimeBase::kCycles)
        return Json(static_cast<std::int64_t>(t));
      return Json(static_cast<double>(t) / 1e6);
    };
    doc.set("ts", chrome_ts(e.ts));
    if (e.phase == Phase::kSpan) doc.set("dur", chrome_ts(e.dur));
    doc.set("pid", 0);
    doc.set("tid", static_cast<std::int64_t>(e.track));

    Json args = Json::object();
    const std::pair<const char*, std::int64_t> ints[] = {
        {"flow", e.flow},     {"node", e.node},   {"link", e.link},
        {"origin", e.origin}, {"route", e.route}, {"pos", e.pos},
        {"len", e.len},       {"depth", e.depth}, {"stage", e.stage},
        {"vc", e.vc},
    };
    for (const auto& [key, value] : ints)
      if (value != TraceEvent::kUnset) args.set(key, value);
    if (!e.detail.empty()) args.set(detail_key(e.name), e.detail);
    doc.set("args", std::move(args));
  }
  *out_ << (count_ == 0 ? "\n" : ",\n") << doc.dump(0);
  ++count_;
}

// --- Tracer ----------------------------------------------------------------

void Tracer::emit(TraceEvent&& e) {
  if (sink_ == nullptr) return;
  e.timebase = timebase_;
  const std::string reason = validate_event(e);
  IHC_ENSURE(reason.empty(), "invalid trace event: " + reason);
  ++emitted_;
  sink_->event(e);
}

void Tracer::announce_topology(const Graph& g) {
  if (announced_) {
    IHC_ENSURE(nodes_ == g.node_count() && links_ == g.link_count(),
               "tracer already announced a different topology");
    return;
  }
  announced_ = true;
  nodes_ = g.node_count();
  links_ = g.link_count();
  if (sink_ == nullptr) return;

  auto meta = [&](const char* name, std::uint32_t track, std::string label) {
    TraceEvent e;
    e.name = name;
    e.phase = Phase::kMetadata;
    e.track = track;
    e.detail = std::move(label);
    emit(std::move(e));
  };
  meta("process_name", 0, "ihc-sim");
  for (NodeId v = 0; v < nodes_; ++v)
    meta("thread_name", node_track(v), "node " + std::to_string(v));
  for (LinkId l = 0; l < links_; ++l)
    meta("thread_name", link_track(l),
         "link " + std::to_string(l) + ": " +
             std::to_string(g.link_source(l)) + "->" +
             std::to_string(g.link_target(l)));
  meta("thread_name", control_track(), "stages");
}

void Tracer::packet_injected(SimTime ts, std::uint32_t flow, NodeId origin,
                             std::uint16_t route, std::uint32_t len) {
  TraceEvent e;
  e.name = "packet_injected";
  e.cat = "packet";
  e.ts = ts;
  e.track = node_track(origin);
  e.flow = flow;
  e.origin = origin;
  e.route = route;
  e.len = len;
  emit(std::move(e));
}

void Tracer::header_advanced(SimTime ts, std::uint32_t flow, NodeId node,
                             std::uint32_t pos) {
  TraceEvent e;
  e.name = "header_advanced";
  e.cat = "packet";
  e.ts = ts;
  e.track = node_track(node);
  e.flow = flow;
  e.node = node;
  e.pos = pos;
  emit(std::move(e));
}

void Tracer::delivered(SimTime ts, std::uint32_t flow, NodeId node,
                       NodeId origin, std::uint16_t route, std::int64_t pos) {
  TraceEvent e;
  e.name = "delivered";
  e.cat = "packet";
  e.ts = ts;
  e.track = node_track(node);
  e.flow = flow;
  e.node = node;
  e.origin = origin;
  e.route = route;
  e.pos = pos;
  emit(std::move(e));
}

void Tracer::xmit(SimTime from, SimTime until, LinkId link, const char* kind,
                  std::int64_t flow, std::int64_t pos) {
  TraceEvent e;
  e.name = "xmit";
  e.cat = "link";
  e.phase = Phase::kSpan;
  e.ts = from;
  e.dur = until - from;
  e.track = link_track(link);
  e.link = link;
  e.flow = flow;
  e.pos = pos;
  e.detail = kind;
  emit(std::move(e));
}

void Tracer::buffered(SimTime from, SimTime until, NodeId node,
                      std::uint32_t flow, std::uint32_t depth) {
  TraceEvent e;
  e.name = "buffered";
  e.cat = "fifo";
  e.phase = Phase::kSpan;
  e.ts = from;
  e.dur = until - from;
  e.track = node_track(node);
  e.node = node;
  e.flow = flow;
  e.depth = depth;
  emit(std::move(e));
}

void Tracer::stalled(SimTime from, SimTime until, NodeId node,
                     std::uint32_t flow) {
  TraceEvent e;
  e.name = "stalled";
  e.cat = "packet";
  e.phase = Phase::kSpan;
  e.ts = from;
  e.dur = until - from;
  e.track = node_track(node);
  e.node = node;
  e.flow = flow;
  emit(std::move(e));
}

void Tracer::fault_fired(SimTime ts, NodeId node, std::uint32_t flow,
                         const char* action, std::int64_t pos) {
  TraceEvent e;
  e.name = "fault_fired";
  e.cat = "fault";
  e.ts = ts;
  e.track = node_track(node);
  e.node = node;
  e.flow = flow;
  e.pos = pos;
  e.detail = action;
  emit(std::move(e));
}

void Tracer::link_dropped(SimTime ts, NodeId node, std::uint32_t flow,
                          LinkId link, std::int64_t pos) {
  TraceEvent e;
  e.name = "link_dropped";
  e.cat = "fault";
  e.ts = ts;
  e.track = node_track(node);
  e.node = node;
  e.flow = flow;
  e.link = link;
  e.pos = pos;
  emit(std::move(e));
}

void Tracer::stage_span(SimTime from, SimTime until, const char* label,
                        std::int64_t stage, std::int64_t origin) {
  TraceEvent e;
  e.name = "stage";
  e.cat = "stage";
  e.phase = Phase::kSpan;
  e.ts = from;
  e.dur = until - from;
  e.track = control_track();
  e.stage = stage;
  e.origin = origin;
  e.detail = label;
  emit(std::move(e));
}

void Tracer::session_arrived(SimTime ts, std::int64_t session,
                             NodeId origin) {
  TraceEvent e;
  e.name = "session_arrive";
  e.cat = "workload";
  e.ts = ts;
  e.track = node_track(origin);
  e.stage = session;
  e.origin = origin;
  emit(std::move(e));
}

void Tracer::session_rejected(SimTime ts, std::int64_t session, NodeId origin,
                              std::uint32_t depth) {
  TraceEvent e;
  e.name = "session_reject";
  e.cat = "workload";
  e.ts = ts;
  e.track = node_track(origin);
  e.stage = session;
  e.origin = origin;
  e.depth = depth;
  emit(std::move(e));
}

void Tracer::session_span(SimTime from, SimTime until, std::int64_t session,
                          NodeId origin, std::uint32_t batch) {
  TraceEvent e;
  e.name = "session";
  e.cat = "workload";
  e.phase = Phase::kSpan;
  e.ts = from;
  e.dur = until - from;
  e.track = node_track(origin);
  e.stage = session;
  e.origin = origin;
  e.len = batch;
  emit(std::move(e));
}

void Tracer::fifo_enqueue(SimTime cycle, LinkId link, std::uint8_t vc,
                          std::uint32_t packet, std::uint32_t hop,
                          std::uint32_t depth) {
  TraceEvent e;
  e.name = "fifo_enqueue";
  e.cat = "fifo";
  e.ts = cycle;
  e.track = link_track(link);
  e.link = link;
  e.vc = vc;
  e.flow = packet;
  e.pos = hop;
  e.depth = depth;
  emit(std::move(e));
}

void Tracer::fifo_dequeue(SimTime cycle, LinkId link, std::uint8_t vc,
                          std::uint32_t packet, std::uint32_t hop,
                          std::uint32_t depth) {
  TraceEvent e;
  e.name = "fifo_dequeue";
  e.cat = "fifo";
  e.ts = cycle;
  e.track = link_track(link);
  e.link = link;
  e.vc = vc;
  e.flow = packet;
  e.pos = hop;
  e.depth = depth;
  emit(std::move(e));
}

void Tracer::flit_blocked(SimTime cycle, LinkId link, std::uint8_t vc,
                          std::uint32_t packet, std::uint32_t hop,
                          const char* reason) {
  TraceEvent e;
  e.name = "flit_blocked";
  e.cat = "flit";
  e.ts = cycle;
  e.track = link_track(link);
  e.link = link;
  e.vc = vc;
  e.flow = packet;
  e.pos = hop;
  e.detail = reason;
  emit(std::move(e));
}

}  // namespace ihc::obs
