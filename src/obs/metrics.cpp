#include "obs/metrics.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace ihc::obs {

namespace {

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kMax: return "max";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

}  // namespace

MetricsRegistry::Entry& MetricsRegistry::touch(std::string_view name,
                                               MetricKind kind) {
  auto it = entries_.find(name);
  if (it == entries_.end())
    it = entries_.emplace(std::string(name), Entry{kind, 0, {}}).first;
  require(it->second.kind == kind,
          "metric '" + std::string(name) + "' is a " +
              kind_name(it->second.kind) + ", not a " + kind_name(kind));
  return it->second;
}

const MetricsRegistry::Entry* MetricsRegistry::find(std::string_view name,
                                                    MetricKind kind) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  require(it->second.kind == kind,
          "metric '" + std::string(name) + "' is a " +
              kind_name(it->second.kind) + ", not a " + kind_name(kind));
  return &it->second;
}

void MetricsRegistry::count(std::string_view name, std::int64_t delta) {
  touch(name, MetricKind::kCounter).value += delta;
}

void MetricsRegistry::maximum(std::string_view name, std::int64_t value) {
  Entry& e = touch(name, MetricKind::kMax);
  e.value = std::max(e.value, value);
}

void MetricsRegistry::observe(std::string_view name, double sample) {
  touch(name, MetricKind::kHistogram).samples.push_back(sample);
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, theirs] : other.entries_) {
    Entry& ours = touch(name, theirs.kind);
    switch (theirs.kind) {
      case MetricKind::kCounter:
        ours.value += theirs.value;
        break;
      case MetricKind::kMax:
        ours.value = std::max(ours.value, theirs.value);
        break;
      case MetricKind::kHistogram:
        ours.samples.insert(ours.samples.end(), theirs.samples.begin(),
                            theirs.samples.end());
        break;
    }
  }
}

std::int64_t MetricsRegistry::counter(std::string_view name) const {
  const Entry* e = find(name, MetricKind::kCounter);
  return e ? e->value : 0;
}

std::int64_t MetricsRegistry::max_value(std::string_view name) const {
  const Entry* e = find(name, MetricKind::kMax);
  return e ? e->value : 0;
}

std::vector<double> MetricsRegistry::samples(std::string_view name) const {
  const Entry* e = find(name, MetricKind::kHistogram);
  return e ? e->samples : std::vector<double>{};
}

Json MetricsRegistry::to_json() const {
  Json doc = Json::object();
  for (const auto& [name, e] : entries_) {  // std::map: name-sorted
    Json entry = Json::object();
    entry.set("kind", kind_name(e.kind));
    if (e.kind == MetricKind::kHistogram) {
      Summary summary;
      for (const double x : e.samples) summary.add(x);
      entry.set("count", static_cast<std::uint64_t>(summary.count()));
      entry.set("mean", summary.mean());
      entry.set("min", summary.min());
      entry.set("max", summary.max());
      entry.set("p50", quantile(e.samples, 0.50));
      entry.set("p90", quantile(e.samples, 0.90));
      entry.set("p99", quantile(e.samples, 0.99));
      Json samples = Json::array();
      for (const double x : e.samples) samples.push(x);
      entry.set("samples", std::move(samples));
    } else {
      entry.set("value", e.value);
    }
    doc.set(name, std::move(entry));
  }
  return doc;
}

}  // namespace ihc::obs
