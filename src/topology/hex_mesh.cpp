#include "topology/hex_mesh.hpp"

#include <algorithm>

#include "topology/circulant.hpp"
#include "util/error.hpp"

namespace ihc {
namespace {
std::array<NodeId, 3> jumps_for(NodeId size) {
  const NodeId n = HexMesh::node_count_for(size);
  // Normalize each jump d to min(d, N-d): d and N-d describe the same edge
  // class.  Only H_2 (N = 7) is affected: {1, 4, 5} -> {1, 3, 2}.
  auto norm = [n](NodeId d) { return std::min(d, n - d); };
  return {norm(1), norm(3 * size - 2), norm(3 * size - 1)};
}

Graph make_hex_graph(NodeId size) {
  require(size >= 2, "hex mesh requires size >= 2");
  const auto j = jumps_for(size);
  return make_circulant_graph(HexMesh::node_count_for(size),
                              {j[0], j[1], j[2]});
}
}  // namespace

HexMesh::HexMesh(NodeId size)
    : Topology("H_" + std::to_string(size), make_hex_graph(size), 6),
      size_(size),
      jumps_(jumps_for(size)) {}

NodeId HexMesh::neighbor(NodeId v, unsigned d) const {
  require(d < 6, "direction out of range");
  const NodeId n = node_count();
  if (d < 3) return (v + jumps_[d]) % n;
  return (v + n - jumps_[d - 3]) % n;
}

HexMesh::Axial HexMesh::coordinates(NodeId center, NodeId v) const {
  require(center < node_count() && v < node_count(),
          "node out of range");
  const NodeId n = node_count();
  const NodeId d2 = 3 * size_ - 1;  // the raw +e_1 jump (pre-normalization)
  const auto diff = static_cast<std::int64_t>((v + n - center) % n);
  const int reach = static_cast<int>(size_);  // coordinates stay < m
  Axial best{0, 0};
  std::uint32_t best_norm = static_cast<std::uint32_t>(-1);
  for (int b = -reach; b <= reach; ++b) {
    // a * 1 == diff - b * d2 (mod N); the two signed candidates nearest 0.
    std::int64_t a_mod =
        (diff - static_cast<std::int64_t>(b) * d2) % static_cast<std::int64_t>(n);
    if (a_mod < 0) a_mod += n;
    for (const std::int64_t a :
         {a_mod, a_mod - static_cast<std::int64_t>(n)}) {
      if (a < -reach || a > reach) continue;
      const Axial candidate{static_cast<int>(a), b};
      const std::uint32_t norm = axial_norm(candidate);
      if (norm < best_norm) {
        best_norm = norm;
        best = candidate;
      }
    }
  }
  IHC_ENSURE(best_norm <= static_cast<std::uint32_t>(size_) - 1,
             "every node lies within the hex radius m-1");
  return best;
}

std::uint32_t HexMesh::axial_norm(Axial d) {
  const auto a = static_cast<std::uint32_t>(d.a < 0 ? -d.a : d.a);
  const auto b = static_cast<std::uint32_t>(d.b < 0 ? -d.b : d.b);
  // Axes e_0 and e_1 are 60 degrees apart and the third unit move is
  // e_1 - e_0: opposite-sign components combine into single moves.
  if ((d.a >= 0) == (d.b >= 0)) return a + b;
  return std::max(a, b);
}

std::uint32_t HexMesh::hex_distance(NodeId u, NodeId v) const {
  return axial_norm(coordinates(u, v));
}

std::vector<NodeId> HexMesh::route(NodeId u, NodeId v) const {
  const NodeId n = node_count();
  const NodeId d0 = 1;
  const NodeId d2 = 3 * size_ - 1;
  Axial rest = coordinates(u, v);
  std::vector<NodeId> path{u};
  NodeId cur = u;
  auto step = [&](NodeId jump, bool forward) {
    cur = forward ? (cur + jump) % n : (cur + n - jump) % n;
    path.push_back(cur);
  };
  // Opposite-sign components pair into moves along the third axis
  // e_1 - e_0 = +(3m - 2).
  while (rest.a != 0 || rest.b != 0) {
    if (rest.a > 0 && rest.b < 0) {
      // -(e_1 - e_0) = e_0 - e_1: jump -(3m - 2).
      step(d2 - d0, false);
      --rest.a;
      ++rest.b;
    } else if (rest.a < 0 && rest.b > 0) {
      step(d2 - d0, true);
      ++rest.a;
      --rest.b;
    } else if (rest.a > 0) {
      step(d0, true);
      --rest.a;
    } else if (rest.a < 0) {
      step(d0, false);
      ++rest.a;
    } else if (rest.b > 0) {
      step(d2, true);
      --rest.b;
    } else {
      step(d2, false);
      ++rest.b;
    }
  }
  IHC_ENSURE(cur == v, "hex route must terminate at the destination");
  return path;
}

std::vector<Cycle> HexMesh::build_hamiltonian_cycles() const {
  std::vector<Cycle> out;
  out.reserve(3);
  for (const NodeId d : jumps_)
    out.push_back(circulant_jump_cycle(node_count(), d));
  return out;
}

}  // namespace ihc
