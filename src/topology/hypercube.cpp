#include "topology/hypercube.hpp"

#include "graph/hc_product.hpp"
#include "util/error.hpp"
#include "util/memo_cache.hpp"

namespace ihc {
namespace {

/// Gray-code Hamiltonian cycle of Q_m (used for the Q_3 base case).
Cycle gray_code_cycle(unsigned m) {
  const NodeId n = NodeId{1} << m;
  std::vector<NodeId> seq(n);
  for (NodeId i = 0; i < n; ++i) seq[i] = i ^ (i >> 1);
  return Cycle(std::move(seq));
}

/// The memo is process-wide shared state; concurrent experiment trials may
/// construct Hypercubes from multiple threads.  MemoCache serializes the
/// whole (recursive) construction - its recursive mutex lets the Theorem
/// 1/2 splits below re-enter decompose() for their factors.
MemoCache<unsigned, std::vector<Cycle>>& decomposition_memo() {
  static MemoCache<unsigned, std::vector<Cycle>> memo;
  return memo;
}

std::vector<Cycle> decompose(unsigned m);

std::vector<Cycle> compute_decomposition(unsigned m) {
  std::vector<Cycle> result;
  if (m == 2) {
    result.push_back(gray_code_cycle(2));
  } else if (m == 3) {
    result.push_back(gray_code_cycle(3));
  } else if (m % 2 == 0) {
    // Theorem 1: split into even halves whose cycle counts differ by <= 1.
    const unsigned k = m / 2;
    const unsigned a = (k % 2 == 0) ? k : k - 1;
    const unsigned b = m - a;
    result = product_hamiltonian_cycles(decompose(a), decompose(b),
                                        NodeId{1} << b);
  } else {
    // Theorem 2: split into an even part and an odd part.
    const unsigned k = (m - 1) / 2;
    const unsigned a = (k % 2 == 0) ? k : k + 1;  // even factor (high bits)
    const unsigned b = m - a;                     // odd factor
    result = product_hamiltonian_cycles(decompose(a), decompose(b),
                                        NodeId{1} << b);
  }

  const Graph g = make_hypercube_graph(m);
  ensure_hc_set(g, result, /*must_cover_all_edges=*/m % 2 == 0);
  return result;
}

std::vector<Cycle> decompose(unsigned m) {
  return decomposition_memo().get_or_compute(
      m, [m] { return compute_decomposition(m); });
}

}  // namespace

Graph make_hypercube_graph(unsigned dimension) {
  require(dimension >= 1 && dimension <= 24, "dimension must be in [1, 24]");
  const NodeId n = NodeId{1} << dimension;
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(dimension) << (dimension - 1));
  for (NodeId v = 0; v < n; ++v) {
    for (unsigned d = 0; d < dimension; ++d) {
      const NodeId w = v ^ (NodeId{1} << d);
      if (v < w) edges.emplace_back(v, w);
    }
  }
  return Graph(n, std::move(edges));
}

std::vector<Cycle> hypercube_hamiltonian_cycles(unsigned dimension) {
  require(dimension >= 2, "Q_0 and Q_1 have no Hamiltonian cycles");
  return decompose(dimension);
}

Hypercube::Hypercube(unsigned dimension)
    : Topology("Q_" + std::to_string(dimension),
               make_hypercube_graph(dimension),
               (dimension / 2) * 2),
      dimension_(dimension) {
  require(dimension >= 2, "hypercube topology requires dimension >= 2");
}

unsigned Hypercube::direction(NodeId u, NodeId v) const {
  const NodeId diff = u ^ v;
  require(diff != 0 && (diff & (diff - 1)) == 0, "nodes are not adjacent");
  unsigned d = 0;
  while ((diff >> d) != 1) ++d;
  return d;
}

std::string Hypercube::node_label(NodeId v) const {
  std::string s(dimension_, '0');
  for (unsigned d = 0; d < dimension_; ++d)
    if (v & (NodeId{1} << d)) s[dimension_ - 1 - d] = '1';
  return s;
}

std::vector<Cycle> Hypercube::build_hamiltonian_cycles() const {
  return hypercube_hamiltonian_cycles(dimension_);
}

}  // namespace ihc
