/// \file custom.hpp
/// \brief User-supplied members of class Lambda.
///
/// Any gamma-regular graph with gamma/2 edge-disjoint Hamiltonian cycles
/// can host the IHC algorithm; CustomTopology wraps a user's graph and
/// cycle set (e.g. reloaded from an hc_cache file, or produced by the
/// decomposition engine on a graph the library does not know) behind the
/// standard Topology interface.  The cycles are verified on first use
/// like everywhere else.
#pragma once

#include "topology/topology.hpp"

namespace ihc {

class CustomTopology final : public Topology {
 public:
  /// \param name    display name
  /// \param graph   host graph
  /// \param cycles  the edge-disjoint Hamiltonian cycles (gamma = 2x count)
  /// \param cover_all_edges whether the cycles must partition E(graph)
  CustomTopology(std::string name, Graph graph, std::vector<Cycle> cycles,
                 bool cover_all_edges = true);

 protected:
  [[nodiscard]] std::vector<Cycle> build_hamiltonian_cycles() const override;
  [[nodiscard]] bool cycles_cover_all_edges() const override {
    return cover_all_edges_;
  }

 private:
  std::vector<Cycle> cycles_;
  bool cover_all_edges_;
};

}  // namespace ihc
