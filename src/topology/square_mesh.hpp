/// \file square_mesh.hpp
/// \brief Torus-wrapped square mesh SQ_m (Section III-B, Fig. 3).
///
/// An m x m torus: gamma = 4, and two edge-disjoint Hamiltonian cycles
/// exist for every m >= 3 (the paper exhibits the m = 4 pattern and notes a
/// similar pattern works for any m; we construct the cycles with the
/// Lemma-1 engine and verify them).
#pragma once

#include "topology/topology.hpp"

namespace ihc {

class SquareMesh final : public Topology {
 public:
  /// \param side m >= 3, the number of nodes per row/column.
  explicit SquareMesh(NodeId side);

  [[nodiscard]] NodeId side() const { return side_; }
  [[nodiscard]] NodeId node_at(NodeId row, NodeId col) const {
    return row * side_ + col;
  }
  [[nodiscard]] NodeId row_of(NodeId v) const { return v / side_; }
  [[nodiscard]] NodeId col_of(NodeId v) const { return v % side_; }

  /// Neighbor in direction d: 0=+col(east), 1=+row(south), 2=-col, 3=-row.
  [[nodiscard]] NodeId neighbor(NodeId v, unsigned d) const;

  [[nodiscard]] std::string node_label(NodeId v) const override;

 protected:
  [[nodiscard]] std::vector<Cycle> build_hamiltonian_cycles() const override;

 private:
  NodeId side_;
};

}  // namespace ihc
