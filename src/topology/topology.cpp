#include "topology/topology.hpp"

#include "obs/prof/profiler.hpp"
#include "util/error.hpp"

namespace ihc {

Topology::Topology(std::string name, Graph graph, std::uint32_t gamma)
    : name_(std::move(name)), graph_(std::move(graph)), gamma_(gamma) {
  require(gamma_ >= 2 && gamma_ % 2 == 0,
          "gamma must be a positive even integer (condition LC1)");
}

void Topology::build_if_needed() const {
  if (built_) return;
  const obs::prof::ScopedPhase prof_scope(obs::prof::Phase::kSetup);
  cycles_ = build_hamiltonian_cycles();
  IHC_ENSURE(cycles_.size() == gamma_ / 2,
             "topology must provide gamma/2 Hamiltonian cycles (LC2)");
  ensure_hc_set(graph_, cycles_, cycles_cover_all_edges());
  directed_.clear();
  directed_.reserve(gamma_);
  for (const Cycle& c : cycles_) {
    directed_.emplace_back(c, /*reversed=*/false, graph_.node_count());
    directed_.emplace_back(c, /*reversed=*/true, graph_.node_count());
  }
  built_ = true;
}

const std::vector<Cycle>& Topology::hamiltonian_cycles() const {
  build_if_needed();
  return cycles_;
}

const std::vector<DirectedCycle>& Topology::directed_cycles() const {
  build_if_needed();
  return directed_;
}

std::string Topology::node_label(NodeId v) const { return std::to_string(v); }

}  // namespace ihc
