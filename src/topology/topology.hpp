/// \file topology.hpp
/// \brief Base interface for interconnection networks in the paper's class
/// Lambda.
///
/// A Topology bundles the undirected graph, the broadcast connectivity
/// gamma, and the gamma/2 undirected edge-disjoint Hamiltonian cycles
/// required by condition LC2.  From those it derives the gamma *directed*
/// Hamiltonian cycles HC_1..HC_gamma the IHC algorithm runs on (the two
/// traversal directions of each undirected cycle), each with the paper's
/// next/prev/ID operations.
///
/// Hamiltonian cycles are constructed lazily on first use, machine-verified
/// (verify_hc_set), and cached.  Topology instances are not thread-safe
/// during that first construction.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/cycle.hpp"
#include "graph/graph.hpp"
#include "graph/hamiltonian.hpp"

namespace ihc {

class Topology {
 public:
  virtual ~Topology() = default;

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Graph& graph() const { return graph_; }
  [[nodiscard]] NodeId node_count() const { return graph_.node_count(); }

  /// Broadcast connectivity: the gamma of the paper.  Equals the node
  /// degree for even-degree topologies; for odd-dimensional hypercubes it
  /// is degree-1 (one link per node is left out of the HC decomposition,
  /// exactly as Section III-A prescribes).
  [[nodiscard]] std::uint32_t gamma() const { return gamma_; }

  /// The gamma/2 undirected edge-disjoint Hamiltonian cycles (LC2).
  /// Built lazily; always verified before being returned.
  [[nodiscard]] const std::vector<Cycle>& hamiltonian_cycles() const;

  /// The gamma directed Hamiltonian cycles HC_1..HC_gamma (0-indexed here):
  /// directed cycle 2h is undirected cycle h traversed forward, 2h+1 the
  /// same cycle traversed backward.  Both share the reference node N_0.
  [[nodiscard]] const std::vector<DirectedCycle>& directed_cycles() const;

  /// Human-readable node label (coordinates) for tables and examples.
  [[nodiscard]] virtual std::string node_label(NodeId v) const;

 protected:
  Topology(std::string name, Graph graph, std::uint32_t gamma);

  /// Subclass hook: construct the gamma/2 undirected Hamiltonian cycles.
  [[nodiscard]] virtual std::vector<Cycle> build_hamiltonian_cycles()
      const = 0;

  /// Whether the HC set must cover every edge of the graph (true for
  /// even-degree members of class Lambda).
  [[nodiscard]] virtual bool cycles_cover_all_edges() const {
    return graph_.regular_degree() == gamma_;
  }

 private:
  std::string name_;
  Graph graph_;
  std::uint32_t gamma_;
  mutable std::vector<Cycle> cycles_;
  mutable std::vector<DirectedCycle> directed_;
  mutable bool built_ = false;

  void build_if_needed() const;
};

}  // namespace ihc
