/// \file hypercube.hpp
/// \brief Binary hypercube Q_m and its Hamiltonian decomposition
/// (Theorems 1 and 2 of the paper).
///
/// A Q_2k decomposes into k undirected edge-disjoint Hamiltonian cycles
/// (Theorem 1); a Q_{2k+1} contains k such cycles, leaving one perfect
/// matching unused (Theorem 2).  The construction follows the paper's
/// inductive strategy: split Q_m = Q_a x Q_b, decompose the factors
/// recursively, pair up their cycles with Lemma 1 (C_p x C_q -> 2 HCs) and
/// absorb an odd leftover with Lemma 2 ((HC u HC) x C_r -> 3 HCs).
#pragma once

#include "topology/topology.hpp"

namespace ihc {

class Hypercube final : public Topology {
 public:
  /// \param dimension m >= 2 (Q_0 and Q_1 have no Hamiltonian cycles).
  explicit Hypercube(unsigned dimension);

  [[nodiscard]] unsigned dimension() const { return dimension_; }

  /// Neighbor of v across dimension d.
  [[nodiscard]] NodeId neighbor(NodeId v, unsigned d) const {
    return v ^ (NodeId{1} << d);
  }

  /// The dimension in which u and v differ; they must be adjacent.
  [[nodiscard]] unsigned direction(NodeId u, NodeId v) const;

  [[nodiscard]] std::string node_label(NodeId v) const override;

 protected:
  [[nodiscard]] std::vector<Cycle> build_hamiltonian_cycles() const override;
  [[nodiscard]] bool cycles_cover_all_edges() const override {
    return dimension_ % 2 == 0;
  }

 private:
  unsigned dimension_;
};

/// Builds the Q_m graph (node ids = m-bit addresses).
[[nodiscard]] Graph make_hypercube_graph(unsigned dimension);

/// Standalone decomposition: floor(m/2) edge-disjoint Hamiltonian cycles of
/// Q_m, for m >= 2.  Deterministic; results verified internally.
[[nodiscard]] std::vector<Cycle> hypercube_hamiltonian_cycles(
    unsigned dimension);

}  // namespace ihc
