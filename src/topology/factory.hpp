/// \file factory.hpp
/// \brief Textual topology specifications, for the CLI and configuration.
///
/// Grammar (case-insensitive prefix, sizes decimal):
///   Q<m>            hypercube of dimension m          (e.g. "Q8")
///   SQ<m>           torus-wrapped square mesh SQ_m    (e.g. "SQ5")
///   H<m>            C-wrapped hexagonal mesh H_m      (e.g. "H3")
///   C<n>:j1,j2,...  circulant on n nodes with jumps   (e.g. "C15:1,2,4")
///   T<m>x<k>        3-D torus SQ_m x C_k              (e.g. "T4x6")
///   TQ<n>           locally twisted cube LTQ_n        (e.g. "TQ4")
///   KT<k>x<n>       k-ary n-dimensional torus         (e.g. "KT4x3")
///   <path>          ihc-topology-v1 JSON file         ("*.topology.json")
///
/// The grammar is owned by the plugin registry (topology/zoo/registry.hpp);
/// this shim is the stable entry point the CLI and configs call.
#pragma once

#include <memory>
#include <string_view>

#include "topology/topology.hpp"

namespace ihc {

/// Parses a topology specification; throws ConfigError with a helpful
/// message on malformed input.
[[nodiscard]] std::shared_ptr<Topology> make_topology(std::string_view spec);

/// One-line description of the accepted grammar (for usage messages).
[[nodiscard]] std::string_view topology_spec_help();

}  // namespace ihc
