#include "topology/factory.hpp"

#include "topology/zoo/registry.hpp"
#include "util/error.hpp"

namespace ihc {

std::shared_ptr<Topology> make_topology(std::string_view spec) {
  const TopologyPlugin* plugin = find_plugin(spec);
  require(plugin != nullptr, "unrecognized topology spec '" +
                                 std::string(spec) + "'; " + zoo_spec_help());
  return plugin->make(spec);
}

std::string_view topology_spec_help() { return zoo_spec_help(); }

}  // namespace ihc
