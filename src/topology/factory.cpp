#include "topology/factory.hpp"

#include <charconv>
#include <cctype>

#include "topology/circulant.hpp"
#include "topology/hex_mesh.hpp"
#include "topology/hypercube.hpp"
#include "topology/product.hpp"
#include "topology/square_mesh.hpp"
#include "util/error.hpp"

namespace ihc {
namespace {

/// Parses an unsigned integer from the front of `s`, advancing it.
std::uint32_t take_number(std::string_view& s, std::string_view what) {
  std::uint32_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value);
  require(ec == std::errc() && ptr != s.data(),
          std::string("expected a number for ") + std::string(what));
  s.remove_prefix(static_cast<std::size_t>(ptr - s.data()));
  return value;
}

bool take_prefix(std::string_view& s, std::string_view prefix) {
  if (s.size() < prefix.size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(s[i])) !=
        std::toupper(static_cast<unsigned char>(prefix[i])))
      return false;
  }
  s.remove_prefix(prefix.size());
  return true;
}

}  // namespace

std::shared_ptr<Topology> make_topology(std::string_view spec) {
  std::string_view s = spec;
  if (take_prefix(s, "SQ")) {
    const auto m = take_number(s, "square mesh side");
    require(s.empty(), "trailing characters in square mesh spec");
    return std::make_shared<SquareMesh>(m);
  }
  if (take_prefix(s, "Q")) {
    const auto m = take_number(s, "hypercube dimension");
    require(s.empty(), "trailing characters in hypercube spec");
    return std::make_shared<Hypercube>(m);
  }
  if (take_prefix(s, "H")) {
    const auto m = take_number(s, "hex mesh size");
    require(s.empty(), "trailing characters in hex mesh spec");
    return std::make_shared<HexMesh>(m);
  }
  if (take_prefix(s, "T")) {
    const auto m = take_number(s, "3-D torus side");
    require(take_prefix(s, "x"), "expected 'x' in 3-D torus spec");
    const auto k = take_number(s, "3-D torus depth");
    require(s.empty(), "trailing characters in 3-D torus spec");
    return make_torus3d(m, k);
  }
  if (take_prefix(s, "C")) {
    const auto n = take_number(s, "circulant node count");
    require(take_prefix(s, ":"), "expected ':' before circulant jumps");
    std::vector<NodeId> jumps;
    while (true) {
      jumps.push_back(take_number(s, "circulant jump"));
      if (s.empty()) break;
      require(take_prefix(s, ","), "expected ',' between jumps");
    }
    return std::make_shared<Circulant>(n, std::move(jumps));
  }
  detail::throw_config("unrecognized topology spec '" + std::string(spec) +
                       "'; " + std::string(topology_spec_help()));
}

std::string_view topology_spec_help() {
  return "expected Q<m> | SQ<m> | H<m> | C<n>:j1,j2,... | T<m>x<k>";
}

}  // namespace ihc
