/// \file product.hpp
/// \brief Class Lambda is closed under Cartesian products - a
/// generalization of the paper's Theorems 1 and 2 beyond hypercubes.
///
/// If G carries p edge-disjoint Hamiltonian cycles and H carries q with
/// |p - q| <= 1, then G x H carries p + q (see hc_product.hpp).  This
/// module packages that as composable Topology types:
///
///   * Ring       - the cycle C_n as a degree-2 member of Lambda (1 HC);
///   * ProductTopology - the Cartesian product of two members;
///   * Torus3D    - SQ_m x C_k, the m x m x k wrap-around 3-D torus with
///                  gamma = 6, as a worked example.
///
/// Products compose: ProductTopology(SquareMesh, SquareMesh) is a 4-D
/// torus with gamma = 8, ProductTopology(HexMesh, HexMesh) a 12-regular
/// network with gamma = 12, and so on - an endless supply of networks the
/// IHC algorithm runs on unchanged.
#pragma once

#include <memory>

#include "topology/topology.hpp"

namespace ihc {

/// The cycle C_n as a Topology: gamma = 2, one Hamiltonian cycle (itself).
class Ring final : public Topology {
 public:
  explicit Ring(NodeId n);

 protected:
  [[nodiscard]] std::vector<Cycle> build_hamiltonian_cycles() const override;
};

/// Cartesian product of two class-Lambda members whose Hamiltonian-cycle
/// counts differ by at most one.  Node (a, b) has id
/// a * second->node_count() + b.
class ProductTopology final : public Topology {
 public:
  ProductTopology(std::shared_ptr<const Topology> first,
                  std::shared_ptr<const Topology> second);

  [[nodiscard]] const Topology& first() const { return *first_; }
  [[nodiscard]] const Topology& second() const { return *second_; }

  [[nodiscard]] NodeId node_at(NodeId a, NodeId b) const {
    return a * second_->node_count() + b;
  }
  [[nodiscard]] std::string node_label(NodeId v) const override;

 protected:
  [[nodiscard]] std::vector<Cycle> build_hamiltonian_cycles() const override;
  [[nodiscard]] bool cycles_cover_all_edges() const override;

 private:
  std::shared_ptr<const Topology> first_;
  std::shared_ptr<const Topology> second_;
};

/// The m x m x k torus (SQ_m x C_k): gamma = 6, three edge-disjoint
/// Hamiltonian cycles via the generalized Theorem 1.
[[nodiscard]] std::shared_ptr<ProductTopology> make_torus3d(NodeId side,
                                                            NodeId depth);

}  // namespace ihc
