#include "topology/square_mesh.hpp"

#include "graph/torus_decomposition.hpp"
#include "util/error.hpp"

namespace ihc {

SquareMesh::SquareMesh(NodeId side)
    : Topology("SQ_" + std::to_string(side), make_torus_graph(side, side),
               4),
      side_(side) {}

NodeId SquareMesh::neighbor(NodeId v, unsigned d) const {
  const NodeId r = row_of(v);
  const NodeId c = col_of(v);
  switch (d) {
    case 0: return node_at(r, (c + 1) % side_);
    case 1: return node_at((r + 1) % side_, c);
    case 2: return node_at(r, (c + side_ - 1) % side_);
    case 3: return node_at((r + side_ - 1) % side_, c);
    default: detail::throw_config("direction must be in [0, 4)");
  }
}

std::string SquareMesh::node_label(NodeId v) const {
  return "(" + std::to_string(row_of(v)) + "," + std::to_string(col_of(v)) +
         ")";
}

std::vector<Cycle> SquareMesh::build_hamiltonian_cycles() const {
  return torus_two_hamiltonian_cycles(side_, side_);
}

}  // namespace ihc
