#include "topology/product.hpp"

#include "graph/hc_product.hpp"
#include "topology/square_mesh.hpp"
#include "util/error.hpp"

namespace ihc {
namespace {

std::vector<NodeId> identity_sequence(NodeId n) {
  std::vector<NodeId> seq(n);
  for (NodeId i = 0; i < n; ++i) seq[i] = i;
  return seq;
}

}  // namespace

Ring::Ring(NodeId n)
    : Topology("C_" + std::to_string(n), make_cycle_graph(n), 2) {}

std::vector<Cycle> Ring::build_hamiltonian_cycles() const {
  return {Cycle(identity_sequence(node_count()))};
}

ProductTopology::ProductTopology(std::shared_ptr<const Topology> first,
                                 std::shared_ptr<const Topology> second)
    : Topology(first->name() + "x" + second->name(),
               cartesian_product(first->graph(), second->graph()),
               first->gamma() + second->gamma()),
      first_(std::move(first)),
      second_(std::move(second)) {
  const std::size_t p = first_->gamma() / 2;
  const std::size_t q = second_->gamma() / 2;
  require((p > q ? p - q : q - p) <= 1,
          "factor Hamiltonian-cycle counts may differ by at most 1 "
          "(generalized Theorem 1)");
}

std::string ProductTopology::node_label(NodeId v) const {
  const NodeId b = v % second_->node_count();
  const NodeId a = v / second_->node_count();
  return "(" + first_->node_label(a) + "," + second_->node_label(b) + ")";
}

std::vector<Cycle> ProductTopology::build_hamiltonian_cycles() const {
  return product_hamiltonian_cycles(first_->hamiltonian_cycles(),
                                    second_->hamiltonian_cycles(),
                                    second_->node_count());
}

bool ProductTopology::cycles_cover_all_edges() const {
  // The product cycles consume exactly the factor cycles' edges, so the
  // product covers everything iff both factors do (an odd-dimensional
  // hypercube factor leaves its perfect matching unused in every layer).
  const bool first_covers =
      first_->graph().regular_degree() == first_->gamma();
  const bool second_covers =
      second_->graph().regular_degree() == second_->gamma();
  return first_covers && second_covers;
}

std::shared_ptr<ProductTopology> make_torus3d(NodeId side, NodeId depth) {
  return std::make_shared<ProductTopology>(
      std::make_shared<SquareMesh>(side), std::make_shared<Ring>(depth));
}

}  // namespace ihc
