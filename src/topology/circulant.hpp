/// \file circulant.hpp
/// \brief General circulant graphs - a broad family inside class Lambda.
///
/// The circulant C(N; d_1..d_k) connects every node s to s +- d_i (mod N).
/// When every jump d_i satisfies gcd(d_i, N) = 1, each jump class is a
/// Hamiltonian cycle, so the graph carries k edge-disjoint undirected
/// Hamiltonian cycles and belongs to class Lambda with gamma = 2k.  This
/// generalizes the C-wrapped hexagonal mesh (jumps {1, 3m-2, 3m-1}) and
/// gives the test suite an endless supply of Lambda members beyond the
/// three topologies the paper discusses.
#pragma once

#include <vector>

#include "topology/topology.hpp"

namespace ihc {

class Circulant final : public Topology {
 public:
  /// \param node_count N >= 3
  /// \param jumps distinct values in [1, N/2) with gcd(jump, N) = 1
  Circulant(NodeId node_count, std::vector<NodeId> jumps);

  [[nodiscard]] const std::vector<NodeId>& jumps() const { return jumps_; }

  /// Neighbor in oriented direction d in [0, 2k): d < k are positive jumps,
  /// d >= k the corresponding negative jumps.
  [[nodiscard]] NodeId neighbor(NodeId v, unsigned d) const;

 protected:
  [[nodiscard]] std::vector<Cycle> build_hamiltonian_cycles() const override;

 private:
  std::vector<NodeId> jumps_;
};

/// Builds the circulant graph C(N; jumps).
[[nodiscard]] Graph make_circulant_graph(NodeId node_count,
                                         const std::vector<NodeId>& jumps);

/// The Hamiltonian cycle traced by repeatedly adding `jump` (mod N);
/// requires gcd(jump, N) = 1.
[[nodiscard]] Cycle circulant_jump_cycle(NodeId node_count, NodeId jump);

}  // namespace ihc
