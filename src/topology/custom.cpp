#include "topology/custom.hpp"

#include "util/error.hpp"

namespace ihc {

CustomTopology::CustomTopology(std::string name, Graph graph,
                               std::vector<Cycle> cycles,
                               bool cover_all_edges)
    : Topology(std::move(name), std::move(graph),
               static_cast<std::uint32_t>(2 * cycles.size())),
      cycles_(std::move(cycles)),
      cover_all_edges_(cover_all_edges) {
  require(!cycles_.empty(), "need at least one Hamiltonian cycle");
}

std::vector<Cycle> CustomTopology::build_hamiltonian_cycles() const {
  return cycles_;
}

}  // namespace ihc
