#include "topology/circulant.hpp"

#include <numeric>

#include "util/error.hpp"

namespace ihc {

Graph make_circulant_graph(NodeId node_count,
                           const std::vector<NodeId>& jumps) {
  require(node_count >= 3, "circulant requires N >= 3");
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(jumps.size()) * node_count);
  for (const NodeId d : jumps) {
    require(d >= 1 && 2 * d < node_count,
            "jumps must lie in [1, N/2) so every class has N edges");
    for (NodeId v = 0; v < node_count; ++v)
      edges.emplace_back(v, (v + d) % node_count);
  }
  return Graph(node_count, std::move(edges));
}

Cycle circulant_jump_cycle(NodeId node_count, NodeId jump) {
  require(std::gcd(node_count, jump) == 1,
          "jump class is a Hamiltonian cycle only when gcd(jump, N) = 1");
  std::vector<NodeId> seq;
  seq.reserve(node_count);
  NodeId v = 0;
  do {
    seq.push_back(v);
    v = (v + jump) % node_count;
  } while (v != 0);
  return Cycle(std::move(seq));
}

namespace {
std::string circulant_name(NodeId n, const std::vector<NodeId>& jumps) {
  std::string s = "C(" + std::to_string(n) + ";";
  for (std::size_t i = 0; i < jumps.size(); ++i)
    s += (i ? "," : " ") + std::to_string(jumps[i]);
  return s + ")";
}
}  // namespace

Circulant::Circulant(NodeId node_count, std::vector<NodeId> jumps)
    : Topology(circulant_name(node_count, jumps),
               make_circulant_graph(node_count, jumps),
               static_cast<std::uint32_t>(2 * jumps.size())),
      jumps_(std::move(jumps)) {
  for (const NodeId d : jumps_)
    require(std::gcd(node_count, d) == 1, "all jumps must be coprime to N");
}

NodeId Circulant::neighbor(NodeId v, unsigned d) const {
  const auto k = static_cast<unsigned>(jumps_.size());
  require(d < 2 * k, "direction out of range");
  const NodeId n = node_count();
  if (d < k) return (v + jumps_[d]) % n;
  return (v + n - jumps_[d - k]) % n;
}

std::vector<Cycle> Circulant::build_hamiltonian_cycles() const {
  std::vector<Cycle> out;
  out.reserve(jumps_.size());
  for (const NodeId d : jumps_)
    out.push_back(circulant_jump_cycle(node_count(), d));
  return out;
}

}  // namespace ihc
