/// \file hex_mesh.hpp
/// \brief C-wrapped hexagonal mesh H_m (Section III-C).
///
/// Following Chen, Shin and Kandlur's addressing scheme [5], the C-wrapped
/// hexagonal mesh of size m is the circulant graph on
/// N = 3m(m-1) + 1 nodes with jumps {1, 3m-2, 3m-1}: the neighbors of node
/// s are s +- 1, s +- (3m-2) and s +- (3m-1) (mod N).  Each jump class is a
/// Hamiltonian cycle (gcd(jump, N) = 1 for every m), which gives the three
/// undirected edge-disjoint Hamiltonian cycles of condition LC2 directly -
/// they are exactly the paper's "set of edges in any direction".
#pragma once

#include <array>

#include "topology/topology.hpp"

namespace ihc {

class HexMesh final : public Topology {
 public:
  /// \param size m >= 2 (m = 1 is a single node).
  explicit HexMesh(NodeId size);

  [[nodiscard]] NodeId size() const { return size_; }

  /// Number of nodes: 3m(m-1) + 1.
  [[nodiscard]] static NodeId node_count_for(NodeId size) {
    return 3 * size * (size - 1) + 1;
  }

  /// The three positive jumps {1, 3m-2, 3m-1}.
  [[nodiscard]] const std::array<NodeId, 3>& jumps() const { return jumps_; }

  /// Neighbor of v in oriented direction d in [0, 6): directions 0..2 are
  /// the positive jumps, 3..5 the corresponding negative jumps.
  [[nodiscard]] NodeId neighbor(NodeId v, unsigned d) const;

  /// Axial coordinates of `v` relative to `center`, following Chen-Shin-
  /// Kandlur's addressing [5]: the minimal-norm (a, b) with
  ///   v - center == a * 1 + b * (3m - 1)   (mod N),
  /// where +1 and +(3m-1) are two hex axes 60 degrees apart (the third
  /// axis +(3m-2) equals their difference).  |a| + |b| <= m - 1 when a, b
  /// share a sign; max(|a|, |b|) <= m - 1 otherwise.
  struct Axial {
    int a = 0;
    int b = 0;
  };
  [[nodiscard]] Axial coordinates(NodeId center, NodeId v) const;

  /// Hex-grid norm of an axial displacement: the number of unit moves.
  [[nodiscard]] static std::uint32_t axial_norm(Axial d);

  /// Closed-form hop distance between two nodes (== BFS distance; the
  /// tests cross-validate).
  [[nodiscard]] std::uint32_t hex_distance(NodeId u, NodeId v) const;

  /// A shortest path from u to v by greedy direction decomposition.
  [[nodiscard]] std::vector<NodeId> route(NodeId u, NodeId v) const;

 protected:
  [[nodiscard]] std::vector<Cycle> build_hamiltonian_cycles() const override;

 private:
  NodeId size_;
  std::array<NodeId, 3> jumps_;
};

}  // namespace ihc
