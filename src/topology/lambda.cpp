#include "topology/lambda.hpp"

#include "graph/connectivity.hpp"
#include "graph/hamiltonian.hpp"

namespace ihc {

LambdaReport check_lambda(const Topology& topo,
                          NodeId exact_connectivity_limit,
                          std::size_t samples, std::uint64_t seed) {
  LambdaReport report;
  const std::uint32_t gamma = topo.gamma();

  // Effective graph: the union of the Hamiltonian cycles' edges.  For
  // even-degree topologies this is the full graph; odd-dimensional
  // hypercubes leave one perfect matching unused (Section III-A).
  std::vector<std::pair<NodeId, NodeId>> effective_edges;
  for (const Cycle& c : topo.hamiltonian_cycles()) {
    const auto& nodes = c.nodes();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const NodeId u = nodes[i];
      const NodeId v = nodes[(i + 1) % nodes.size()];
      effective_edges.emplace_back(std::min(u, v), std::max(u, v));
    }
  }
  const Graph effective(topo.node_count(), std::move(effective_edges));

  // LC1 on the effective graph.
  report.lc1 = effective.is_regular() && gamma % 2 == 0 &&
               effective.regular_degree() == gamma;
  if (!report.lc1) {
    report.detail = "LC1 violated: effective graph is not gamma-regular "
                    "with even gamma";
  }

  // LC2: the cycles must be Hamiltonian and edge-disjoint; by construction
  // of `effective` they cover all of its edges.
  const HcSetVerdict verdict =
      verify_hc_set(effective, topo.hamiltonian_cycles(),
                    /*must_cover_all_edges=*/true);
  report.lc2 =
      verdict.ok && topo.hamiltonian_cycles().size() == gamma / 2;
  if (!verdict.ok) report.detail = "LC2 violated: " + verdict.reason;

  // Connectivity claim: kappa(effective) == gamma.
  if (topo.node_count() <= exact_connectivity_limit) {
    report.connectivity = vertex_connectivity(effective) == gamma;
    report.connectivity_exact = true;
  } else {
    SplitMix64 rng(seed);
    report.connectivity =
        connectivity_at_least_sampled(effective, gamma, samples, rng);
    report.connectivity_exact = false;
  }
  if (!report.connectivity && report.detail.empty())
    report.detail = "connectivity does not match gamma";
  return report;
}

}  // namespace ihc
