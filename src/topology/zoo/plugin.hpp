/// \file plugin.hpp
/// \brief The topology-zoo plugin interface.
///
/// The paper hand-codes three members of class Lambda; the zoo turns
/// membership into a property a plugin *declares or computes*.  A
/// TopologyPlugin bundles, for one topology family:
///
///   * identity: name, spec grammar, parameter schema, one-line summary;
///   * an adjacency generator (`probe`) that maps a spec string to the
///     bare graph plus an *optional known-decomposition hint* - hand-coded
///     families supply their constructed cycles, search-based families
///     supply nothing and let graph/ham_search.hpp find or refute the
///     decomposition;
///   * a `make` factory producing the full Topology object (the concrete
///     subclass, so baseline algorithms that need mesh/hypercube
///     coordinates keep working);
///   * `check_specs`: representative specs certified by
///     `ihc_cli topology --check` and the zoo-smoke CI job.
///
/// Plugins register in src/topology/zoo/registry.cpp; the catalog table in
/// docs/TOPOLOGIES.md mirrors the registry and is drift-checked by
/// scripts/check_docs.py.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/cycle.hpp"
#include "graph/graph.hpp"
#include "topology/topology.hpp"

namespace ihc {

/// Provenance of a topology's Hamiltonian decomposition.
enum class DecompSource {
  kHandCoded,  ///< constructive (paper lemmas / jump cycles / products)
  kExact,      ///< found by the exact backtracking search
  kHeuristic,  ///< found by rotation repair or Euler-split cycle-merge
  kFile,       ///< embedded in an ihc-topology-v1 file
};

[[nodiscard]] const char* to_string(DecompSource source);

/// Graph-level view of one spec, for the membership pipeline: enough to
/// check or search a decomposition without constructing a Topology (which
/// non-members, by design, cannot be).
struct ZooProbe {
  std::string display_name;  ///< e.g. "TQ_3"
  Graph graph;
  /// Target broadcast connectivity; 0 means "derive from the regular
  /// degree" (largest even value it admits).
  std::uint32_t gamma = 0;
  /// Known decomposition, when the family has one by construction (or the
  /// file embeds one).  Absent -> the search engine decides membership.
  std::optional<std::vector<Cycle>> hint;
  DecompSource hint_source = DecompSource::kHandCoded;
};

/// One registered topology family.
struct TopologyPlugin {
  std::string name;         ///< registry key, e.g. "twisted-cube"
  std::string spec_format;  ///< grammar, e.g. "TQ<n>"
  std::string params;       ///< parameter schema, human-readable
  std::string summary;      ///< one-line description for --list
  /// How this family's decompositions are (expected to be) obtained.
  DecompSource source = DecompSource::kHandCoded;
  /// Specs certified by `topology --check` (no argument) and zoo-smoke CI.
  std::vector<std::string> check_specs;
  /// Cheap syntactic test: does this plugin claim the spec?  Must not
  /// throw; full validation happens in make/probe.
  std::function<bool(std::string_view spec)> matches;
  /// Builds the Topology (concrete subclass).  Throws ConfigError on
  /// malformed or out-of-range specs.
  std::function<std::shared_ptr<Topology>(std::string_view spec)> make;
  /// Builds the graph-level probe for the membership pipeline.
  std::function<ZooProbe(std::string_view spec)> probe;
};

}  // namespace ihc
