/// \file loader.hpp
/// \brief Arbitrary adjacency-list topologies: the `ihc-topology-v1`
/// JSON format.
///
/// The zoo's escape hatch: any graph becomes a candidate topology by
/// writing a JSON file - no C++ required.  Schema (documented in
/// docs/TOPOLOGIES.md, drift-checked by scripts/check_docs.py):
///
///   {
///     "format": "ihc-topology-v1",          // required, exactly this
///     "name":   "my-net",                   // optional display name
///     "nodes":  6,                          // required, >= 1
///     "edges":  [[0,1],[1,2], ...],         // required, undirected pairs
///     "gamma":  4,                          // optional, even; default:
///                                           //   largest even <= degree
///     "cycles": [[0,1,2,3,4,5], ...]        // optional known
///   }                                       //   decomposition (gamma/2
///                                           //   vertex sequences)
///
/// Embedded cycles are certified at load time (certify_decomposition) and
/// rejected with the verifier's diagnostic when invalid; files without
/// cycles get their decomposition searched by graph/ham_search.hpp.  A
/// spec is routed to this loader when it ends in ".topology.json" (or any
/// ".json").
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/cycle.hpp"
#include "graph/graph.hpp"
#include "topology/topology.hpp"

namespace ihc {

/// Parsed content of an ihc-topology-v1 document.
struct TopologyFile {
  std::string name;           ///< display name ("custom" when absent)
  Graph graph;
  std::uint32_t gamma = 0;    ///< 0 = unspecified (derive from degree)
  std::vector<Cycle> cycles;  ///< empty = no embedded decomposition
};

/// Parses an ihc-topology-v1 document; throws ConfigError on malformed
/// JSON, schema violations, or embedded cycles that fail certification.
[[nodiscard]] TopologyFile parse_topology_file(std::string_view text);

/// Reads and parses a file; throws ConfigError when unreadable.
[[nodiscard]] TopologyFile load_topology_file(const std::string& path);

/// Serializes a graph (plus optional certified cycles) back to the
/// ihc-topology-v1 format - the write side of `ihc_cli topology --export`.
[[nodiscard]] std::string serialize_topology_file(
    const std::string& name, const Graph& graph, std::uint32_t gamma,
    const std::vector<Cycle>& cycles);

/// Builds a runnable Topology from a file: embedded cycles are used as-is
/// (already certified by the parser); otherwise the decomposition is
/// searched, and a refuted/unknown outcome throws ConfigError telling the
/// user to run `ihc_cli topology --check`.
[[nodiscard]] std::shared_ptr<Topology> make_file_topology(
    const std::string& path);

}  // namespace ihc
