/// \file registry.hpp
/// \brief The topology-zoo registry and the Lambda-membership pipeline.
///
/// All topology families - the paper's hand-coded three, the circulant
/// and product generalizations, the search-based newcomers (twisted cube,
/// k-ary n-torus) and the ihc-topology-v1 file loader - register here as
/// TopologyPlugins.  The registry is the single source of truth for:
///
///   * spec parsing: topology/factory.hpp's make_topology() dispatches to
///     the first plugin whose `matches` claims the spec;
///   * `ihc_cli topology --list/--check/--decompose/--export`;
///   * the zoo-smoke CI job (every plugin's check_specs must certify);
///   * the docs/TOPOLOGIES.md catalog (drift-checked by check_docs.py
///     against the `p.name = "...";` / `p.spec_format = "...";` lines in
///     registry.cpp, and at runtime by tests/test_zoo.cpp).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "graph/ham_search.hpp"
#include "topology/zoo/plugin.hpp"

namespace ihc {

/// All registered plugins, in match-priority order (longer prefixes
/// before their prefixes: SQ/KT/TQ before Q/T).
[[nodiscard]] const std::vector<TopologyPlugin>& topology_registry();

/// First plugin claiming `spec`, or nullptr.
[[nodiscard]] const TopologyPlugin* find_plugin(std::string_view spec);

/// Plugin with the given registry name, or nullptr.
[[nodiscard]] const TopologyPlugin* find_plugin_by_name(
    std::string_view name);

/// One-line spec grammar assembled from the registry (usage messages).
[[nodiscard]] const std::string& zoo_spec_help();

/// Outcome of the membership pipeline for one spec.
struct MembershipReport {
  std::string spec;
  std::string plugin;        ///< registry name of the claiming plugin
  std::string display_name;  ///< e.g. "TQ_3"
  NodeId nodes = 0;
  EdgeId edges = 0;
  std::uint32_t degree = 0;  ///< regular degree (0 when irregular)
  std::uint32_t gamma = 0;   ///< certified/attempted gamma
  SearchStatus status = SearchStatus::kUnknown;
  DecompSource source = DecompSource::kHandCoded;  ///< when certified
  bool cover_all_edges = false;
  std::string detail;         ///< refutation reason / give-up note
  std::vector<Cycle> cycles;  ///< the certified decomposition
  HamSearchStats stats;       ///< search effort (zero for hints)
};

/// Runs the full membership pipeline on a spec: probe the plugin,
/// certify its decomposition hint if it has one, otherwise search (and
/// possibly refute).  `ignore_hint` forces the search even when the
/// plugin supplies a construction (for exercising the engine, e.g.
/// `topology --decompose Q4 --exact`).  Throws ConfigError when no
/// plugin claims the spec or the spec itself is malformed.
[[nodiscard]] MembershipReport check_membership(
    std::string_view spec, const HamSearchOptions& options = {},
    bool ignore_hint = false);

}  // namespace ihc
