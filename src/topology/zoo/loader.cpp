#include "topology/zoo/loader.hpp"

#include <fstream>
#include <sstream>
#include <utility>

#include "graph/ham_search.hpp"
#include "topology/custom.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace ihc {
namespace {

NodeId node_from_json(const Json& v, NodeId node_count,
                      std::string_view where) {
  require(v.is_number(), std::string(where) + " must be a number");
  const std::int64_t raw = v.as_int();
  require(raw >= 0 && raw < static_cast<std::int64_t>(node_count),
          std::string(where) + " node id " + std::to_string(raw) +
              " out of range [0, " + std::to_string(node_count) + ")");
  return static_cast<NodeId>(raw);
}

}  // namespace

TopologyFile parse_topology_file(std::string_view text) {
  std::string error;
  const std::optional<Json> doc = Json::parse(text, &error);
  require(doc.has_value(), "topology file is not valid JSON: " + error);
  require(doc->is_object(), "topology file must be a JSON object");

  const Json* format = doc->find("format");
  require(format != nullptr && format->is_string() &&
              format->as_string() == "ihc-topology-v1",
          "topology file must declare \"format\": \"ihc-topology-v1\"");

  const Json* nodes = doc->find("nodes");
  require(nodes != nullptr && nodes->is_number() && nodes->as_int() >= 1,
          "topology file needs \"nodes\" >= 1");
  const auto node_count = static_cast<NodeId>(nodes->as_int());
  require(node_count <= (NodeId{1} << 20),
          "topology file exceeds the 2^20-node limit");

  const Json* edges = doc->find("edges");
  require(edges != nullptr && edges->is_array(),
          "topology file needs an \"edges\" array");
  std::vector<std::pair<NodeId, NodeId>> edge_list;
  edge_list.reserve(edges->items().size());
  for (const Json& e : edges->items()) {
    require(e.is_array() && e.items().size() == 2,
            "every edge must be a two-element array [u, v]");
    const NodeId u = node_from_json(e.items()[0], node_count, "edge");
    const NodeId v = node_from_json(e.items()[1], node_count, "edge");
    edge_list.emplace_back(u, v);
  }

  TopologyFile file{.name = "custom",
                    .graph = Graph(node_count, std::move(edge_list)),
                    .gamma = 0,
                    .cycles = {}};

  if (const Json* name = doc->find("name"); name != nullptr) {
    require(name->is_string(), "\"name\" must be a string");
    file.name = std::string(name->as_string());
  }
  if (const Json* gamma = doc->find("gamma"); gamma != nullptr) {
    require(gamma->is_number() && gamma->as_int() >= 2 &&
                gamma->as_int() % 2 == 0,
            "\"gamma\" must be an even integer >= 2");
    file.gamma = static_cast<std::uint32_t>(gamma->as_int());
  }
  if (const Json* cycles = doc->find("cycles"); cycles != nullptr) {
    require(cycles->is_array(), "\"cycles\" must be an array of cycles");
    for (const Json& c : cycles->items()) {
      require(c.is_array(), "every cycle must be an array of node ids");
      std::vector<NodeId> seq;
      seq.reserve(c.items().size());
      for (const Json& v : c.items())
        seq.push_back(node_from_json(v, node_count, "cycle"));
      file.cycles.emplace_back(std::move(seq));
    }
    if (file.gamma == 0)
      file.gamma = static_cast<std::uint32_t>(2 * file.cycles.size());
    const bool cover = file.graph.is_regular() &&
                       file.graph.regular_degree() == file.gamma;
    const Certificate cert =
        certify_decomposition(file.graph, file.cycles, file.gamma, cover);
    require(cert.ok, "embedded cycles rejected (" +
                         std::string(to_string(cert.failure)) +
                         "): " + cert.detail);
  }
  return file;
}

TopologyFile load_topology_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "cannot read topology file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_topology_file(buffer.str());
}

std::string serialize_topology_file(const std::string& name,
                                    const Graph& graph, std::uint32_t gamma,
                                    const std::vector<Cycle>& cycles) {
  Json doc = Json::object();
  doc.set("format", "ihc-topology-v1");
  doc.set("name", name);
  doc.set("nodes", static_cast<std::uint64_t>(graph.node_count()));
  Json edges = Json::array();
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    const auto [u, v] = graph.edge(e);
    edges.push(Json::array()
                   .push(static_cast<std::uint64_t>(u))
                   .push(static_cast<std::uint64_t>(v)));
  }
  doc.set("edges", std::move(edges));
  if (gamma != 0) doc.set("gamma", static_cast<std::uint64_t>(gamma));
  if (!cycles.empty()) {
    Json cycle_array = Json::array();
    for (const Cycle& c : cycles) {
      Json seq = Json::array();
      for (const NodeId v : c.nodes())
        seq.push(static_cast<std::uint64_t>(v));
      cycle_array.push(std::move(seq));
    }
    doc.set("cycles", std::move(cycle_array));
  }
  return doc.dump(2) + "\n";
}

std::shared_ptr<Topology> make_file_topology(const std::string& path) {
  TopologyFile file = load_topology_file(path);
  if (!file.cycles.empty()) {
    const bool cover = file.graph.is_regular() &&
                       file.graph.regular_degree() == file.gamma;
    return std::make_shared<CustomTopology>(file.name, std::move(file.graph),
                                            std::move(file.cycles), cover);
  }
  const HamSearchResult result = search_hamiltonian_decomposition(
      file.graph, file.gamma / 2);
  require(result.status == SearchStatus::kFound,
          "'" + path + "' is not a certified class-Lambda member (" +
              result.detail + "); run `ihc_cli topology --check " + path +
              "` for details");
  const bool cover = file.graph.is_regular() &&
                     file.graph.regular_degree() == result.gamma;
  return std::make_shared<CustomTopology>(file.name, std::move(file.graph),
                                          result.cycles, cover);
}

}  // namespace ihc
