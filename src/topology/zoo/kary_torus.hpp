/// \file kary_torus.hpp
/// \brief The k-ary n-dimensional torus - the wormhole-era workhorse
/// network, generalizing the paper's SQ_m (k-ary 2-torus) and ring.
///
/// Nodes are n-digit radix-k coordinates; each node links to its +-1
/// neighbor (mod k) in every dimension, giving a 2n-regular graph on k^n
/// nodes.  Jung & Sakho (PAPERS.md) show all-to-all optimality on tori
/// rests on exactly the paper's cycle structure; the torus is known to
/// decompose into n edge-disjoint Hamiltonian cycles (Aubert-Schneider,
/// the paper's reference [2]).  Here the decomposition is *searched*, not
/// hand-coded: the zoo treats the torus like any foreign adjacency and
/// lets graph/ham_search.hpp find and certify the n cycles (exact for
/// small k^n, heuristic above), memoized per (k, n).
#pragma once

#include "topology/topology.hpp"

namespace ihc {

class KaryTorus final : public Topology {
 public:
  /// \param arity k >= 3 (k = 2 collapses +-1 into one link)
  /// \param dims  n >= 1; k^n must not exceed 2^20 nodes
  KaryTorus(NodeId arity, unsigned dims);

  [[nodiscard]] NodeId arity() const { return arity_; }
  [[nodiscard]] unsigned dims() const { return dims_; }

  /// Digit d of v's radix-k coordinate vector (d = 0 varies fastest).
  [[nodiscard]] NodeId coordinate(NodeId v, unsigned d) const;

  [[nodiscard]] std::string node_label(NodeId v) const override;

 protected:
  [[nodiscard]] std::vector<Cycle> build_hamiltonian_cycles() const override;

 private:
  NodeId arity_;
  unsigned dims_;
};

/// Builds the k-ary n-torus graph.
[[nodiscard]] Graph make_kary_torus_graph(NodeId arity, unsigned dims);

/// Search-found decomposition into n edge-disjoint Hamiltonian cycles;
/// certified before return, memoized per (arity, dims).
[[nodiscard]] std::vector<Cycle> kary_torus_hamiltonian_cycles(NodeId arity,
                                                               unsigned dims);

}  // namespace ihc
