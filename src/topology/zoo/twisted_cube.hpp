/// \file twisted_cube.hpp
/// \brief Locally twisted cube LTQ_n - a class-Lambda member beyond the
/// paper's three families.
///
/// The locally twisted cube (Yang, Evans & Megson) is an n-regular
/// hypercube variant on 2^n nodes with roughly half the diameter:
///
///   LTQ_2 = Q_2 (the 4-cycle);
///   LTQ_n = 0 LTQ_{n-1}  u  1 LTQ_{n-1}, plus the twisted matching
///           0 x_{n-2} x_{n-3} ... x_0  <->  1 (x_{n-2} xor x_0) x_{n-3} ... x_0.
///
/// Hung proved twisted-cube variants carry two edge-disjoint Hamiltonian
/// cycles (PAPERS.md), so LTQ_n joins class Lambda with gamma = 4 for
/// n >= 4 (gamma = 2 below that).  Unlike the paper's families there is no
/// constructive decomposition in this codebase: the cycles are *found* by
/// the Hamiltonian-decomposition search engine (exact for small n,
/// heuristic above), certified, and memoized - the zoo's showcase of
/// Lambda-membership as a computed property.
#pragma once

#include "topology/topology.hpp"

namespace ihc {

class TwistedCube final : public Topology {
 public:
  /// \param dimension n in [2, 16] (N = 2^n nodes).
  explicit TwistedCube(unsigned dimension);

  [[nodiscard]] unsigned dimension() const { return dimension_; }

  [[nodiscard]] std::string node_label(NodeId v) const override;

 protected:
  [[nodiscard]] std::vector<Cycle> build_hamiltonian_cycles() const override;
  [[nodiscard]] bool cycles_cover_all_edges() const override {
    return gamma() == dimension_;
  }

 private:
  unsigned dimension_;
};

/// Builds the LTQ_n graph (node ids = n-bit addresses, bit n-1 the split).
[[nodiscard]] Graph make_twisted_cube_graph(unsigned dimension);

/// Broadcast connectivity of LTQ_n: 2 for n <= 3 (one cycle), 4 for
/// n >= 4 (Hung's pair of edge-disjoint Hamiltonian cycles).
[[nodiscard]] std::uint32_t twisted_cube_gamma(unsigned dimension);

/// Search-found decomposition of LTQ_n into gamma/2 edge-disjoint
/// Hamiltonian cycles; certified before return, memoized per dimension
/// (util/memo_cache.hpp).  Throws InvariantError if the search fails -
/// which for the supported range indicates a bug, not a non-member.
[[nodiscard]] std::vector<Cycle> twisted_cube_hamiltonian_cycles(
    unsigned dimension);

}  // namespace ihc
