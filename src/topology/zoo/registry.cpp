#include "topology/zoo/registry.hpp"

#include <cctype>
#include <charconv>
#include <utility>

#include "topology/circulant.hpp"
#include "topology/hex_mesh.hpp"
#include "topology/hypercube.hpp"
#include "topology/product.hpp"
#include "topology/square_mesh.hpp"
#include "topology/zoo/kary_torus.hpp"
#include "topology/zoo/loader.hpp"
#include "topology/zoo/twisted_cube.hpp"
#include "util/error.hpp"

namespace ihc {

const char* to_string(DecompSource source) {
  switch (source) {
    case DecompSource::kHandCoded: return "hand-coded";
    case DecompSource::kExact: return "exact";
    case DecompSource::kHeuristic: return "heuristic";
    case DecompSource::kFile: return "file";
  }
  return "?";
}

namespace {

/// Parses an unsigned integer from the front of `s`, advancing it.
std::uint32_t take_number(std::string_view& s, std::string_view what) {
  std::uint32_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value);
  require(ec == std::errc() && ptr != s.data(),
          std::string("expected a number for ") + std::string(what));
  s.remove_prefix(static_cast<std::size_t>(ptr - s.data()));
  return value;
}

bool take_prefix(std::string_view& s, std::string_view prefix) {
  if (s.size() < prefix.size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(s[i])) !=
        std::toupper(static_cast<unsigned char>(prefix[i])))
      return false;
  }
  s.remove_prefix(prefix.size());
  return true;
}

/// Case-insensitive "starts with `prefix` followed by a digit" - the
/// matcher shape for all letter-prefixed specs.  Prefix+digit keeps every
/// family mutually exclusive ("TQ3" cannot match "T<m>x<k>", "SQ4"
/// cannot match "Q<m>") without relying on registration order.
bool prefix_then_digit(std::string_view spec, std::string_view prefix) {
  std::string_view s = spec;
  if (!take_prefix(s, prefix)) return false;
  return !s.empty() && std::isdigit(static_cast<unsigned char>(s[0]));
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// Probe built from a fully constructed Topology: its verified cycles are
/// the decomposition hint.
ZooProbe probe_from_topology(const std::shared_ptr<Topology>& t,
                             DecompSource source) {
  return ZooProbe{.display_name = t->name(),
                  .graph = t->graph(),
                  .gamma = t->gamma(),
                  .hint = t->hamiltonian_cycles(),
                  .hint_source = source};
}

std::vector<TopologyPlugin> build_registry() {
  std::vector<TopologyPlugin> plugins;

  {
    TopologyPlugin p;
    p.name = "hypercube";
    p.spec_format = "Q<m>";
    p.params = "m >= 2: dimension; N = 2^m, gamma = 2*floor(m/2)";
    p.summary = "binary hypercube Q_m (paper Sec. III-A, Theorems 1-2)";
    p.source = DecompSource::kHandCoded;
    p.check_specs = {"Q3", "Q4", "Q5", "Q6"};
    p.matches = [](std::string_view spec) {
      return prefix_then_digit(spec, "Q");
    };
    p.make = [](std::string_view spec) -> std::shared_ptr<Topology> {
      std::string_view s = spec;
      take_prefix(s, "Q");
      const auto m = take_number(s, "hypercube dimension");
      require(s.empty(), "trailing characters in hypercube spec");
      return std::make_shared<Hypercube>(m);
    };
    plugins.push_back(std::move(p));
  }
  {
    TopologyPlugin p;
    p.name = "square-mesh";
    p.spec_format = "SQ<m>";
    p.params = "m >= 3: side; N = m^2, gamma = 4";
    p.summary = "torus-wrapped square mesh SQ_m (paper Sec. III-B)";
    p.source = DecompSource::kHandCoded;
    p.check_specs = {"SQ4", "SQ5"};
    p.matches = [](std::string_view spec) {
      return prefix_then_digit(spec, "SQ");
    };
    p.make = [](std::string_view spec) -> std::shared_ptr<Topology> {
      std::string_view s = spec;
      take_prefix(s, "SQ");
      const auto m = take_number(s, "square mesh side");
      require(s.empty(), "trailing characters in square mesh spec");
      return std::make_shared<SquareMesh>(m);
    };
    plugins.push_back(std::move(p));
  }
  {
    TopologyPlugin p;
    p.name = "hex-mesh";
    p.spec_format = "H<m>";
    p.params = "m >= 2: size; N = 3m(m-1)+1, gamma = 6";
    p.summary = "C-wrapped hexagonal mesh H_m (paper Sec. III-C)";
    p.source = DecompSource::kHandCoded;
    p.check_specs = {"H2", "H3"};
    p.matches = [](std::string_view spec) {
      return prefix_then_digit(spec, "H");
    };
    p.make = [](std::string_view spec) -> std::shared_ptr<Topology> {
      std::string_view s = spec;
      take_prefix(s, "H");
      const auto m = take_number(s, "hex mesh size");
      require(s.empty(), "trailing characters in hex mesh spec");
      return std::make_shared<HexMesh>(m);
    };
    plugins.push_back(std::move(p));
  }
  {
    TopologyPlugin p;
    p.name = "circulant";
    p.spec_format = "C<n>:j1,j2,...";
    p.params =
        "n >= 3; jumps distinct in [1, n/2) with gcd(j, n) = 1; gamma = 2k";
    p.summary = "circulant C(n; j1..jk): each jump class a Hamiltonian cycle";
    p.source = DecompSource::kHandCoded;
    p.check_specs = {"C13:1,5"};
    p.matches = [](std::string_view spec) {
      return prefix_then_digit(spec, "C");
    };
    p.make = [](std::string_view spec) -> std::shared_ptr<Topology> {
      std::string_view s = spec;
      take_prefix(s, "C");
      const auto n = take_number(s, "circulant node count");
      require(take_prefix(s, ":"), "expected ':' before circulant jumps");
      std::vector<NodeId> jumps;
      while (true) {
        jumps.push_back(take_number(s, "circulant jump"));
        if (s.empty()) break;
        require(take_prefix(s, ","), "expected ',' between jumps");
      }
      return std::make_shared<Circulant>(n, std::move(jumps));
    };
    plugins.push_back(std::move(p));
  }
  {
    TopologyPlugin p;
    p.name = "torus3d";
    p.spec_format = "T<m>x<k>";
    p.params = "m >= 3 side, k >= 3 depth; N = m^2 * k, gamma = 6";
    p.summary = "3-D torus SQ_m x C_k via the product construction";
    p.source = DecompSource::kHandCoded;
    p.check_specs = {"T3x4"};
    p.matches = [](std::string_view spec) {
      return prefix_then_digit(spec, "T");
    };
    p.make = [](std::string_view spec) -> std::shared_ptr<Topology> {
      std::string_view s = spec;
      take_prefix(s, "T");
      const auto m = take_number(s, "3-D torus side");
      require(take_prefix(s, "x"), "expected 'x' in 3-D torus spec");
      const auto k = take_number(s, "3-D torus depth");
      require(s.empty(), "trailing characters in 3-D torus spec");
      return make_torus3d(m, k);
    };
    plugins.push_back(std::move(p));
  }
  {
    TopologyPlugin p;
    p.name = "twisted-cube";
    p.spec_format = "TQ<n>";
    p.params = "n in [2, 16]: dimension; N = 2^n, gamma = 2 (n <= 3) or 4";
    p.summary = "locally twisted cube LTQ_n; decomposition found by search";
    p.source = DecompSource::kExact;
    p.check_specs = {"TQ3", "TQ4"};
    p.matches = [](std::string_view spec) {
      return prefix_then_digit(spec, "TQ");
    };
    p.make = [](std::string_view spec) -> std::shared_ptr<Topology> {
      std::string_view s = spec;
      take_prefix(s, "TQ");
      const auto n = take_number(s, "twisted cube dimension");
      require(s.empty(), "trailing characters in twisted cube spec");
      return std::make_shared<TwistedCube>(n);
    };
    p.probe = [](std::string_view spec) -> ZooProbe {
      std::string_view s = spec;
      take_prefix(s, "TQ");
      const auto n = take_number(s, "twisted cube dimension");
      require(s.empty(), "trailing characters in twisted cube spec");
      return ZooProbe{.display_name = "TQ_" + std::to_string(n),
                      .graph = make_twisted_cube_graph(n),
                      .gamma = twisted_cube_gamma(n),
                      .hint = std::nullopt,
                      .hint_source = DecompSource::kExact};
    };
    plugins.push_back(std::move(p));
  }
  {
    TopologyPlugin p;
    p.name = "kary-torus";
    p.spec_format = "KT<k>x<n>";
    p.params = "k >= 3 arity, n >= 1 dims; N = k^n <= 2^20, gamma = 2n";
    p.summary = "k-ary n-torus; decomposition found by search";
    p.source = DecompSource::kExact;
    p.check_specs = {"KT3x2", "KT4x2"};
    p.matches = [](std::string_view spec) {
      return prefix_then_digit(spec, "KT");
    };
    p.make = [](std::string_view spec) -> std::shared_ptr<Topology> {
      std::string_view s = spec;
      take_prefix(s, "KT");
      const auto k = take_number(s, "torus arity");
      require(take_prefix(s, "x"), "expected 'x' in k-ary torus spec");
      const auto n = take_number(s, "torus dimensions");
      require(s.empty(), "trailing characters in k-ary torus spec");
      return std::make_shared<KaryTorus>(k, n);
    };
    p.probe = [](std::string_view spec) -> ZooProbe {
      std::string_view s = spec;
      take_prefix(s, "KT");
      const auto k = take_number(s, "torus arity");
      require(take_prefix(s, "x"), "expected 'x' in k-ary torus spec");
      const auto n = take_number(s, "torus dimensions");
      require(s.empty(), "trailing characters in k-ary torus spec");
      return ZooProbe{.display_name = "KT_" + std::to_string(k) + "x" +
                                      std::to_string(n),
                      .graph = make_kary_torus_graph(k, n),
                      .gamma = 2 * n,
                      .hint = std::nullopt,
                      .hint_source = DecompSource::kExact};
    };
    plugins.push_back(std::move(p));
  }
  {
    TopologyPlugin p;
    p.name = "file";
    p.spec_format = "<path>.topology.json";
    p.params = "path to an ihc-topology-v1 JSON document";
    p.summary = "arbitrary adjacency list (ihc-topology-v1 JSON)";
    p.source = DecompSource::kFile;
    p.check_specs = {};
    p.matches = [](std::string_view spec) {
      return ends_with(spec, ".json");
    };
    p.make = [](std::string_view spec) -> std::shared_ptr<Topology> {
      return make_file_topology(std::string(spec));
    };
    p.probe = [](std::string_view spec) -> ZooProbe {
      TopologyFile file = load_topology_file(std::string(spec));
      ZooProbe probe{.display_name = file.name,
                     .graph = std::move(file.graph),
                     .gamma = file.gamma,
                     .hint = std::nullopt,
                     .hint_source = DecompSource::kFile};
      if (!file.cycles.empty()) probe.hint = std::move(file.cycles);
      return probe;
    };
    plugins.push_back(std::move(p));
  }

  // Hand-coded families share one probe shape: construct the topology and
  // surface its (verified) cycles as the hint.
  for (TopologyPlugin& p : plugins) {
    if (!p.probe) {
      const auto make = p.make;
      const auto source = p.source;
      p.probe = [make, source](std::string_view spec) {
        return probe_from_topology(make(spec), source);
      };
    }
  }
  return plugins;
}

}  // namespace

const std::vector<TopologyPlugin>& topology_registry() {
  static const std::vector<TopologyPlugin> registry = build_registry();
  return registry;
}

const TopologyPlugin* find_plugin(std::string_view spec) {
  for (const TopologyPlugin& p : topology_registry()) {
    if (p.matches(spec)) return &p;
  }
  return nullptr;
}

const TopologyPlugin* find_plugin_by_name(std::string_view name) {
  for (const TopologyPlugin& p : topology_registry()) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

const std::string& zoo_spec_help() {
  static const std::string help = [] {
    std::string s = "expected ";
    bool first = true;
    for (const TopologyPlugin& p : topology_registry()) {
      if (!first) s += " | ";
      s += p.spec_format;
      first = false;
    }
    return s;
  }();
  return help;
}

MembershipReport check_membership(std::string_view spec,
                                  const HamSearchOptions& options,
                                  bool ignore_hint) {
  const TopologyPlugin* plugin = find_plugin(spec);
  require(plugin != nullptr, "unrecognized topology spec '" +
                                 std::string(spec) + "'; " + zoo_spec_help());
  ZooProbe probe = plugin->probe(spec);

  MembershipReport report;
  report.spec = std::string(spec);
  report.plugin = plugin->name;
  report.display_name = probe.display_name;
  report.nodes = probe.graph.node_count();
  report.edges = probe.graph.edge_count();
  const LambdaStructure structure = lambda_structure(probe.graph);
  report.degree = structure.regular ? structure.degree : 0;

  if (probe.hint.has_value() && !ignore_hint) {
    report.gamma = probe.gamma != 0
                       ? probe.gamma
                       : static_cast<std::uint32_t>(2 * probe.hint->size());
    report.cover_all_edges =
        structure.regular && structure.degree == report.gamma;
    const Certificate cert = certify_decomposition(
        probe.graph, *probe.hint, report.gamma, report.cover_all_edges);
    // Hints are verified constructions (library) or pre-certified files
    // (loader); a failure here is a bug, not a property of the graph.
    IHC_ENSURE(cert.ok, "decomposition hint for '" + report.spec +
                            "' failed certification: " + cert.detail);
    report.status = SearchStatus::kFound;
    report.source = probe.hint_source;
    report.cycles = std::move(*probe.hint);
    return report;
  }

  if (structure.refuted) {
    report.status = SearchStatus::kRefuted;
    report.gamma = probe.gamma;
    report.detail = structure.detail;
    return report;
  }

  const std::uint32_t need = probe.gamma != 0 ? probe.gamma / 2 : 0;
  HamSearchResult result =
      search_hamiltonian_decomposition(probe.graph, need, options);
  report.gamma = result.gamma;
  report.status = result.status;
  report.detail = std::move(result.detail);
  report.stats = result.stats;
  if (result.status == SearchStatus::kFound) {
    report.source = result.stats.exact ? DecompSource::kExact
                                       : DecompSource::kHeuristic;
    report.cover_all_edges =
        structure.regular && structure.degree == result.gamma;
    report.cycles = std::move(result.cycles);
  }
  return report;
}

}  // namespace ihc
