#include "topology/zoo/twisted_cube.hpp"

#include <utility>

#include "graph/ham_search.hpp"
#include "util/error.hpp"
#include "util/memo_cache.hpp"

namespace ihc {

Graph make_twisted_cube_graph(unsigned dimension) {
  require(dimension >= 2, "twisted cube dimension must be at least 2");
  require(dimension <= 16, "twisted cube dimension must be at most 16");
  const NodeId n = NodeId{1} << dimension;
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(n) * dimension / 2);
  // Recursive definition, unrolled: level d in [2, dimension] glues the
  // two (d-1)-sub-cubes inside every d-bit block.  Level-1 edges are the
  // LTQ_2 base case's low-dimension links, handled by d = 1 as plain
  // hypercube bit-0 edges.
  for (NodeId v = 0; v < n; ++v) {
    const NodeId u0 = v ^ NodeId{1};  // dimension-0 link (untwisted)
    if (v < u0) edges.emplace_back(v, u0);
  }
  for (unsigned d = 1; d < dimension; ++d) {
    // Matching between 0-half and 1-half of every (d+1)-bit block:
    // 0 x_{d-1} ... x_0 <-> 1 (x_{d-1} xor x_0) x_{d-2} ... x_0.
    // d == 1 degenerates to the plain Q_2 edge (x_{d-1} is x_0 itself;
    // the twist would leave the block, so LTQ_2 = Q_2 keeps it straight).
    for (NodeId v = 0; v < n; ++v) {
      if ((v >> d) & NodeId{1}) continue;  // only from the 0-half
      NodeId u = v | (NodeId{1} << d);
      if (d >= 2 && (v & NodeId{1})) u ^= NodeId{1} << (d - 1);
      edges.emplace_back(v, u);
    }
  }
  return Graph(n, std::move(edges));
}

std::uint32_t twisted_cube_gamma(unsigned dimension) {
  return dimension <= 3 ? 2 : 4;
}

std::vector<Cycle> twisted_cube_hamiltonian_cycles(unsigned dimension) {
  static MemoCache<unsigned, std::vector<Cycle>> memo;
  return memo.get_or_compute(dimension, [&] {
    const Graph g = make_twisted_cube_graph(dimension);
    const std::uint32_t gamma = twisted_cube_gamma(dimension);
    const HamSearchResult result =
        search_hamiltonian_decomposition(g, gamma / 2);
    IHC_ENSURE(result.status == SearchStatus::kFound,
               "twisted cube decomposition search failed: " + result.detail);
    return result.cycles;
  });
}

TwistedCube::TwistedCube(unsigned dimension)
    : Topology("TQ_" + std::to_string(dimension),
               make_twisted_cube_graph(dimension),
               twisted_cube_gamma(dimension)),
      dimension_(dimension) {}

std::string TwistedCube::node_label(NodeId v) const {
  std::string label(dimension_, '0');
  for (unsigned b = 0; b < dimension_; ++b) {
    if ((v >> b) & NodeId{1}) label[dimension_ - 1 - b] = '1';
  }
  return label;
}

std::vector<Cycle> TwistedCube::build_hamiltonian_cycles() const {
  return twisted_cube_hamiltonian_cycles(dimension_);
}

}  // namespace ihc
