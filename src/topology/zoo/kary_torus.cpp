#include "topology/zoo/kary_torus.hpp"

#include <utility>

#include "graph/ham_search.hpp"
#include "util/error.hpp"
#include "util/memo_cache.hpp"

namespace ihc {
namespace {

NodeId checked_node_count(NodeId arity, unsigned dims) {
  require(arity >= 3, "torus arity must be at least 3");
  require(dims >= 1, "torus must have at least one dimension");
  std::uint64_t n = 1;
  for (unsigned d = 0; d < dims; ++d) {
    n *= arity;
    require(n <= (std::uint64_t{1} << 20),
            "torus exceeds the 2^20-node limit");
  }
  return static_cast<NodeId>(n);
}

}  // namespace

Graph make_kary_torus_graph(NodeId arity, unsigned dims) {
  const NodeId n = checked_node_count(arity, dims);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(n) * dims);
  NodeId stride = 1;
  for (unsigned d = 0; d < dims; ++d) {
    for (NodeId v = 0; v < n; ++v) {
      const NodeId digit = (v / stride) % arity;
      const NodeId up = digit + 1 == arity ? v - digit * stride : v + stride;
      edges.emplace_back(v, up);  // the -1 link is the previous node's +1
    }
    stride *= arity;
  }
  return Graph(n, std::move(edges));
}

std::vector<Cycle> kary_torus_hamiltonian_cycles(NodeId arity,
                                                 unsigned dims) {
  static MemoCache<std::pair<NodeId, unsigned>, std::vector<Cycle>> memo;
  return memo.get_or_compute({arity, dims}, [&] {
    const Graph g = make_kary_torus_graph(arity, dims);
    const HamSearchResult result =
        search_hamiltonian_decomposition(g, dims);
    IHC_ENSURE(result.status == SearchStatus::kFound,
               "k-ary torus decomposition search failed: " + result.detail);
    return result.cycles;
  });
}

KaryTorus::KaryTorus(NodeId arity, unsigned dims)
    : Topology("KT_" + std::to_string(arity) + "x" + std::to_string(dims),
               make_kary_torus_graph(arity, dims), 2 * dims),
      arity_(arity),
      dims_(dims) {}

NodeId KaryTorus::coordinate(NodeId v, unsigned d) const {
  NodeId stride = 1;
  for (unsigned i = 0; i < d; ++i) stride *= arity_;
  return (v / stride) % arity_;
}

std::string KaryTorus::node_label(NodeId v) const {
  std::string label = "(";
  for (unsigned d = 0; d < dims_; ++d) {
    if (d > 0) label += ",";
    label += std::to_string(coordinate(v, d));
  }
  label += ")";
  return label;
}

std::vector<Cycle> KaryTorus::build_hamiltonian_cycles() const {
  return kary_torus_hamiltonian_cycles(arity_, dims_);
}

}  // namespace ihc
