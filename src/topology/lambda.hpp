/// \file lambda.hpp
/// \brief Membership checks for the paper's class Lambda (Section III).
///
/// A graph G belongs to class Lambda when:
///   LC1: G is gamma-regular for an even integer gamma, and
///   LC2: G contains gamma/2 undirected edge-disjoint Hamiltonian cycles.
/// The paper further notes that membership implies gamma is the (vertex)
/// connectivity of G.  This module checks all three statements for a
/// Topology: LC1 structurally, LC2 by verifying the constructed cycles, and
/// the connectivity claim via max-flow (exactly for small graphs, sampled
/// for large ones).
#pragma once

#include <string>

#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace ihc {

struct LambdaReport {
  bool lc1 = false;           ///< gamma-regular, gamma even
  bool lc2 = false;           ///< gamma/2 edge-disjoint HCs verified
  bool connectivity = false;  ///< vertex connectivity matches gamma
  bool connectivity_exact = false;  ///< whether the check was exhaustive
  std::string detail;               ///< failure description, if any

  [[nodiscard]] bool in_lambda() const { return lc1 && lc2; }
};

/// Checks the topology's *effective* graph (the union of its Hamiltonian
/// cycles, which for odd-degree graphs excludes the unused matching)
/// against LC1/LC2 and the connectivity claim.
/// \param exact_connectivity_limit graphs with at most this many nodes get
///        the exhaustive O(n^2)-flows connectivity check; larger ones get a
///        sampled check with `samples` random pairs.
[[nodiscard]] LambdaReport check_lambda(const Topology& topo,
                                        NodeId exact_connectivity_limit = 128,
                                        std::size_t samples = 32,
                                        std::uint64_t seed = 42);

}  // namespace ihc
