#include "exp/campaigns.hpp"

#include <map>
#include <memory>
#include <span>

#include "core/analysis.hpp"
#include "core/ihc.hpp"
#include "core/ks.hpp"
#include "core/retransmit.hpp"
#include "core/service.hpp"
#include "core/session.hpp"
#include "core/verify.hpp"
#include "core/vrs.hpp"
#include "core/vsq.hpp"
#include "sim/fault_schedule.hpp"
#include "topology/factory.hpp"
#include "topology/hex_mesh.hpp"
#include "topology/hypercube.hpp"
#include "topology/square_mesh.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workload/engine.hpp"

namespace ihc::exp {

namespace {

/// Builds a hypercube and forces its (lazily constructed, per-instance
/// cached) directed cycles now, on the caller's thread - afterwards the
/// topology is immutable and safe to share across trial workers.
std::shared_ptr<const Hypercube> prebuilt_hypercube(unsigned dimension) {
  auto cube = std::make_shared<Hypercube>(dimension);
  (void)cube->directed_cycles();
  return cube;
}

/// Routing table over the campaign topology, built once on the caller's
/// thread.  Immutable after construction, so all trial workers share it
/// (AtaOptions::routes) instead of each Network deriving its own tables.
std::shared_ptr<const RoutingTable> prebuilt_routes(const Topology& topo) {
  return std::make_shared<const RoutingTable>(topo.graph());
}

// --- rho_sweep -----------------------------------------------------------
// Section VI-B: IHC on Q_6 under Poisson background load, measured between
// the Table II (best) and Table IV (worst) bounds, for both stage-barrier
// policies.  Both barrier variants of one rho share a background-traffic
// seed so their finish times compare the same traffic realization.

CampaignSpec rho_sweep_spec() {
  CampaignSpec spec;
  spec.name = "rho_sweep";
  spec.description =
      "IHC on Q_6 under background load rho (Section VI-B); eta = 2, "
      "alpha = 20 ns, tau_S = 200 ns, background packets of 8 FIFO units";
  spec.axes = {
      {"rho", {0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}},
      {"barrier", {std::string("global"), std::string("per-cycle")}},
  };
  return spec;
}

Campaign make_rho_sweep() {
  auto cube = prebuilt_hypercube(6);
  auto routes = prebuilt_routes(*cube);
  NetworkParams p;
  p.alpha = sim_ns(20);
  p.tau_s = sim_ns(200);  // small startup so contention effects dominate
  p.mu = 2;
  p.background_mu = 8;
  const double best = model::ihc_dedicated(cube->node_count(), 2, p);
  const double worst = model::ihc_worst(cube->node_count(), 2, p);

  Campaign campaign;
  campaign.spec = rho_sweep_spec();
  campaign.run = [cube, routes, p, best, worst](const Trial& trial,
                                                TrialContext& ctx) {
    AtaOptions opt;
    opt.net = p;
    opt.tracer = ctx.tracer;
    opt.metrics = &ctx.metrics;
    opt.routes = routes.get();
    opt.net.rho = trial.get_double("rho");
    // Deliberately independent of the barrier axis and replica: both
    // variants of one rho must see the same background traffic.
    opt.net.seed = derive_seed(
        "rho_sweep", "rho=" + format_param(ParamValue(opt.net.rho)));

    IhcOptions io{.eta = 2};
    if (trial.get_str("barrier") == "per-cycle")
      io.barrier = StageBarrier::kPerCycle;
    const AtaResult run = run_ihc(*cube, io, opt);

    const double total_relays = static_cast<double>(
        run.stats.cut_throughs + run.stats.buffered_relays);
    return std::vector<Metric>{
        {"finish_ps", static_cast<double>(run.finish)},
        {"first_order_ps",
         model::ihc_first_order_load(cube->node_count(), 2, opt.net)},
        {"vs_best", static_cast<double>(run.finish) / best},
        {"vs_worst", static_cast<double>(run.finish) / worst},
        {"ct_kept_pct",
         100.0 * static_cast<double>(run.stats.cut_throughs) / total_relays},
        {"buffered_relays",
         static_cast<double>(run.stats.buffered_relays)},
        {"background_packets",
         static_cast<double>(run.stats.background_packets)},
    };
  };
  return campaign;
}

// --- fault_tolerance -----------------------------------------------------
// Section I's reliability bounds, measured: Byzantine corrupters at random
// placements on Q_6, IHC (edge-disjoint routes) vs. VRS (node-disjoint),
// under strict-majority, received-majority and signed acceptance.  The
// fault placement seed is shared across the algo axis so both algorithms
// face the same adversary.

CampaignSpec fault_tolerance_spec() {
  CampaignSpec spec;
  spec.name = "fault_tolerance";
  spec.description =
      "Byzantine corrupter sweep on Q_6 (gamma = 6): fraction of healthy "
      "ordered pairs deciding correct/wrong/undecided per voting rule";
  spec.axes = {
      {"t", {std::int64_t{0}, std::int64_t{1}, std::int64_t{2},
             std::int64_t{3}, std::int64_t{4}, std::int64_t{5}}},
      {"algo", {std::string("ihc"), std::string("vrs")}},
  };
  spec.replicas = 5;
  return spec;
}

Campaign make_fault_tolerance() {
  auto cube = prebuilt_hypercube(6);
  auto routes = prebuilt_routes(*cube);

  Campaign campaign;
  campaign.spec = fault_tolerance_spec();
  campaign.run = [cube, routes](const Trial& trial, TrialContext& ctx) {
    const auto t = static_cast<std::uint32_t>(trial.get_int("t"));
    SplitMix64 rng(derive_seed(
        "fault_tolerance", "t=" + std::to_string(t) + ",rep=" +
                               std::to_string(trial.replica)));
    FaultPlan plan(rng());
    while (plan.fault_count() < t)
      plan.add(static_cast<NodeId>(rng.below(cube->node_count())),
               FaultMode::kCorrupt);

    AtaOptions opt;
    opt.net.alpha = sim_ns(20);
    opt.net.tau_s = sim_us(5);
    opt.net.mu = 2;
    opt.tracer = ctx.tracer;
    opt.metrics = &ctx.metrics;
    opt.routes = routes.get();
    opt.granularity = DeliveryLedger::Granularity::kFull;
    opt.faults = &plan;
    const KeyRing keys(7);
    opt.keys = &keys;

    const AtaResult result = trial.get_str("algo") == "vrs"
                                 ? run_vrs_ata(*cube, opt)
                                 : run_ihc(*cube, IhcOptions{.eta = 2}, opt);

    const std::uint32_t gamma = cube->gamma();
    const auto faulty = plan.faulty_nodes();
    auto rates = [&](const char* prefix, const KeyRing* k, VoteRule rule,
                     std::vector<Metric>& out) {
      const ReliabilityReport r =
          assess_reliability(result.ledger, k, gamma, faulty, rule);
      const auto pairs = static_cast<double>(r.pairs);
      const std::string base(prefix);
      out.push_back(
          {base + "_correct", static_cast<double>(r.correct) / pairs});
      out.push_back({base + "_wrong", static_cast<double>(r.wrong) / pairs});
      out.push_back(
          {base + "_undecided", static_cast<double>(r.undecided) / pairs});
    };
    std::vector<Metric> metrics;
    rates("strict", nullptr, VoteRule::kStrictMajority, metrics);
    rates("received", nullptr, VoteRule::kReceivedMajority, metrics);
    rates("signed", &keys, VoteRule::kStrictMajority, metrics);
    return metrics;
  };
  return campaign;
}

// --- duty_cycle ----------------------------------------------------------
// Section VI-A's feasibility claim in duty-cycle form: a periodic IHC
// service on Q_8, swept over sync periods.

CampaignSpec duty_cycle_spec() {
  CampaignSpec spec;
  spec.name = "duty_cycle";
  spec.description =
      "Periodic IHC service on Q_8 (alpha = 20 ns, tau_S = 0.5 ms, "
      "eta = mu = 2, 5 rounds): measured duty cycle per sync period";
  spec.axes = {
      {"period_ms", {std::int64_t{2}, std::int64_t{10}, std::int64_t{100},
                     std::int64_t{1000}}},
  };
  return spec;
}

Campaign make_duty_cycle() {
  auto cube = prebuilt_hypercube(8);
  auto routes = prebuilt_routes(*cube);
  NetworkParams p;
  p.alpha = sim_ns(20);
  p.tau_s = sim_us(500);  // the paper's conservative 0.5 ms
  p.mu = 2;

  Campaign campaign;
  campaign.spec = duty_cycle_spec();
  campaign.run = [cube, routes, p](const Trial& trial, TrialContext& ctx) {
    AtaOptions opt;
    opt.net = p;
    opt.tracer = ctx.tracer;
    opt.metrics = &ctx.metrics;
    opt.routes = routes.get();
    opt.net.seed = trial.seed;
    ServiceConfig config;
    config.period = sim_ms(trial.get_int("period_ms"));
    config.rounds = 5;
    const ServiceReport r = run_periodic_service(*cube, config, opt);
    return std::vector<Metric>{
        {"round_mean_ps", r.round_times.mean()},
        {"duty_cycle_pct", 100.0 * r.duty_cycle},
        {"missed_deadlines", static_cast<double>(r.missed_deadlines)},
        {"all_rounds_complete", r.all_rounds_complete ? 1.0 : 0.0},
    };
  };
  return campaign;
}

// --- chaos_soak ----------------------------------------------------------
// Dynamic fault schedules with mid-broadcast recovery (docs/FAULTS.md):
// IHC under timestamped fault injection at escalating severities.  The
// three legacy scenarios (HC-edge death, silent node flap, transient
// link glitch on Q_4) are statically recoverable - reissue on surviving
// cycles suffices.  The four escalation scenarios force the later rungs
// of the adaptive ladder: cycle_cut kills an edge in both arcs of every
// undirected cycle (no static route survives; the survivor subgraph
// re-roots), node_death kills a Q_4 node (the bipartite survivor refutes
// re-rooting; node-disjoint-path unicast recovers), node_death_tq4 kills
// a twisted-cube node (non-bipartite, so re-rooting succeeds where Q_4
// could not), and node_storm kills two opposite-parity Q_6 nodes at
// escalating times.  Every trial also replays its schedule under the
// PR 5 static-only ladder (no observability attached, mirroring the zoo
// baselines) so the report carries the latency / retry / traffic
// comparison, and asserts static recovery fails where escalation is
// forced.

CampaignSpec chaos_soak_spec() {
  CampaignSpec spec;
  spec.name = "chaos_soak";
  spec.description =
      "Mid-broadcast fault injection at escalating node-death rates on "
      "Q_4/TQ_4/Q_6 (min_copies = gamma): three statically recoverable "
      "scenarios plus four that force re-rooting or disjoint-path "
      "fallback, each compared against the static-only ladder";
  spec.axes = {
      {"scenario",
       {std::string("hc_edge_death"), std::string("node_flap"),
        std::string("link_glitch"), std::string("cycle_cut"),
        std::string("node_death"), std::string("node_death_tq4"),
        std::string("node_storm")}},
  };
  spec.replicas = 3;
  return spec;
}

/// Builds the per-trial fault schedule.  All randomness derives from the
/// (scenario, replica) coordinates - never from worker identity - so the
/// report is byte-identical across --jobs counts and repeated runs.
FaultSchedule chaos_schedule(const Topology& topo,
                             const std::string& scenario,
                             std::uint32_t replica) {
  SplitMix64 rng(derive_seed("chaos_soak", "scenario=" + scenario +
                                               ",rep=" +
                                               std::to_string(replica)));
  FaultSchedule schedule(rng());
  // A victim edge on directed cycle 0: every origin's cycle-0 route
  // crosses it except the single origin whose route starts just past it.
  const DirectedCycle& hc = topo.directed_cycles()[0];
  const std::size_t pos = rng.below(hc.length());
  const LinkId victim =
      topo.graph().link(hc.at(pos), hc.at((pos + 1) % hc.length()));
  if (scenario == "hc_edge_death") {
    // Permanent death mid-stage-0 (stages land around tau_S = 5 us);
    // statically unrecoverable at min_copies = gamma, recovered by
    // reissue on cycle 1.
    schedule.fail_link(victim, sim_us(2));
  } else if (scenario == "node_flap") {
    // A relay goes silent across most of the broadcast and is repaired
    // before the detection timeout expires, so reissues route through it.
    const auto node = static_cast<NodeId>(rng.below(topo.node_count()));
    schedule.fault_node(node, FaultMode::kSilent, sim_us(1), sim_us(7));
  } else if (scenario == "link_glitch") {
    // Transient glitch: packets committing to the victim link inside the
    // window are lost; the window closes long before the reissue.  With
    // tau_S = 5 us the stage-0 relay traffic crosses links at ~5 us, so
    // the window opens just before that and is over well ahead of the
    // detection timeout.
    const auto jitter = static_cast<std::int64_t>(rng.below(1000));
    schedule.glitch_link(victim, sim_us(4) + sim_ns(jitter), sim_us(3));
  } else if (scenario == "cycle_cut") {
    // Two dead edges (both directions) on every undirected cycle: each
    // static route uses all of its cycle's edges but one, so every
    // reissue route is dead and recovery must re-root the survivor
    // subgraph.  The cut lands at 2 us, before any first hop completes.
    for (const Cycle& c : topo.hamiltonian_cycles()) {
      const std::size_t n = c.length();
      const std::size_t first = rng.below(n);
      const std::size_t second = (first + 1 + rng.below(n - 1)) % n;
      for (const std::size_t p : {first, second}) {
        const NodeId u = c.at(p);
        const NodeId v = c.at((p + 1) % n);
        schedule.fail_link(topo.graph().link(u, v), sim_us(2));
        schedule.fail_link(topo.graph().link(v, u), sim_us(2));
      }
    }
  } else if (scenario == "node_death" || scenario == "node_death_tq4") {
    // Permanent node death mid-broadcast: every static cycle through the
    // victim is degraded for good.  On bipartite Q_4 the survivor
    // subgraph has no Hamiltonian cycle (odd halves), forcing the
    // disjoint-path fallback; on non-bipartite TQ_4 re-rooting succeeds.
    const auto node = static_cast<NodeId>(rng.below(topo.node_count()));
    schedule.fault_node(node, FaultMode::kSilent, sim_ns(2500));
  } else {
    require(scenario == "node_storm", "unknown chaos_soak scenario");
    // Escalating storm on Q_6: a second opposite-parity victim (no
    // common neighbors) dies while recovery from the first is still
    // possible, so the re-rooted decomposition must survive both.
    const auto first = static_cast<NodeId>(rng.below(topo.node_count()));
    const auto second = static_cast<NodeId>(first ^ 0b000111u);
    schedule.fault_node(first, FaultMode::kSilent, sim_ns(2500));
    schedule.fault_node(second, FaultMode::kSilent, sim_us(4));
  }
  return schedule;
}

Campaign make_chaos_soak() {
  auto q4 = prebuilt_hypercube(4);
  auto q4_routes = prebuilt_routes(*q4);
  std::shared_ptr<const Topology> tq4 = make_topology("TQ4");
  (void)tq4->directed_cycles();
  auto tq4_routes = prebuilt_routes(*tq4);
  auto q6 = prebuilt_hypercube(6);
  auto q6_routes = prebuilt_routes(*q6);

  Campaign campaign;
  campaign.spec = chaos_soak_spec();
  campaign.run = [q4, q4_routes, tq4, tq4_routes, q6, q6_routes](
                     const Trial& trial, TrialContext& ctx) {
    const std::string scenario = trial.get_str("scenario");
    const Topology* topo = q4.get();
    const RoutingTable* routes = q4_routes.get();
    if (scenario == "node_death_tq4") {
      topo = tq4.get();
      routes = tq4_routes.get();
    } else if (scenario == "node_storm") {
      topo = q6.get();
      routes = q6_routes.get();
    }

    const auto base_options = [&]() {
      AtaOptions opt;
      opt.net.alpha = sim_ns(20);
      opt.net.tau_s = sim_us(5);
      opt.net.mu = 2;
      opt.net.seed = trial.seed;
      opt.routes = routes;
      return opt;
    };
    RecoveryPolicy policy;
    policy.detection_timeout = sim_us(5);
    policy.max_retries = 3;
    policy.min_copies = topo->gamma();  // demand full redundancy

    // PR 5 comparison replay: the same schedule under the static-only
    // ladder, with no observability attached (like the zoo baselines) so
    // the trial's trace and metrics describe the full-ladder run alone.
    FaultSchedule static_schedule =
        chaos_schedule(*topo, scenario, trial.replica);
    AtaOptions static_opt = base_options();
    static_opt.schedule = &static_schedule;
    RecoveryPolicy static_policy = policy;
    static_policy.ladder = RecoveryLadder::kStatic;
    const RecoveryReport s = run_ihc_with_recovery(
        *topo, IhcOptions{.eta = 2}, static_opt, static_policy);

    FaultSchedule schedule = chaos_schedule(*topo, scenario, trial.replica);
    AtaOptions opt = base_options();
    opt.schedule = &schedule;
    opt.tracer = ctx.tracer;
    opt.metrics = &ctx.metrics;
    const RecoveryReport r =
        run_ihc_with_recovery(*topo, IhcOptions{.eta = 2}, opt, policy);

    return std::vector<Metric>{
        {"complete", r.complete ? 1.0 : 0.0},
        {"initial_complete", r.initial_complete ? 1.0 : 0.0},
        {"retries", static_cast<double>(r.retries_used)},
        {"flows_reissued", static_cast<double>(r.flows_reissued)},
        {"unrecovered_pairs", static_cast<double>(r.unrecovered_pairs)},
        {"unreachable_pairs", static_cast<double>(r.unreachable_pairs)},
        {"escalations", static_cast<double>(r.escalations)},
        {"rerooted_cycles", static_cast<double>(r.rerooted_cycles)},
        {"reroot_reissues", static_cast<double>(r.reroot_reissues)},
        {"fallback_paths", static_cast<double>(r.fallback_paths)},
        {"path_attempts", static_cast<double>(r.path_attempts_used)},
        {"initial_finish_ps", static_cast<double>(r.initial_finish)},
        {"recovery_latency_ps", static_cast<double>(r.recovery_latency)},
        {"finish_ps", static_cast<double>(r.finish)},
        {"fault_drops", static_cast<double>(r.stats.fault_drops)},
        {"link_drops", static_cast<double>(r.stats.link_drops)},
        {"static_complete", s.complete ? 1.0 : 0.0},
        {"static_retries", static_cast<double>(s.retries_used)},
        {"static_reissues", static_cast<double>(s.flows_reissued)},
        {"static_unrecovered_pairs",
         static_cast<double>(s.unrecovered_pairs)},
        {"static_recovery_latency_ps",
         static_cast<double>(s.recovery_latency)},
    };
  };
  return campaign;
}

// --- events_scaling ------------------------------------------------------
// The time-sharded parallel engine's determinism gate (docs/PARALLEL.md):
// one IHC run on Q_6 under multi-hop background load, repeated at shard
// counts 1, 2 and 4.  Every trial re-checks its run against a sequential
// baseline digest captured at campaign construction - a shard count that
// moves any number fails the trial, so the campaign is a hard CI gate
// even on single-core runners where no speedup is observable.

CampaignSpec events_scaling_spec() {
  CampaignSpec spec;
  spec.name = "events_scaling";
  spec.description =
      "IHC on Q_6, eta = 2, rho = 0.3 multi-hop background, replayed at "
      "--shards 1/2/4: every trial must reproduce the sequential-window "
      "baseline byte for byte (docs/PARALLEL.md)";
  spec.axes = {
      {"shards", {std::int64_t{1}, std::int64_t{2}, std::int64_t{4}}},
  };
  return spec;
}

Campaign make_events_scaling() {
  auto cube = prebuilt_hypercube(6);
  auto routes = prebuilt_routes(*cube);
  NetworkParams p;
  p.alpha = sim_ns(20);
  p.tau_s = sim_ns(200);
  p.mu = 2;
  p.background_mu = 8;
  p.rho = 0.3;
  p.background_mode = BackgroundMode::kMultiHopFlows;
  p.seed = derive_seed("events_scaling", "q6");

  auto run_at = [cube, routes, p](std::uint32_t shards,
                                  TrialContext* ctx) {
    AtaOptions opt;
    opt.net = p;
    opt.net.shards = shards;
    opt.routes = routes.get();
    if (ctx != nullptr) {
      opt.tracer = ctx->tracer;
      opt.metrics = &ctx->metrics;
    }
    return run_ihc(*cube, IhcOptions{.eta = 2}, opt);
  };

  // The baseline digest, captured once on the constructing thread; the
  // closure then shares it immutably with every trial worker.
  const AtaResult base = run_at(1, nullptr);

  Campaign campaign;
  campaign.spec = events_scaling_spec();
  campaign.run = [run_at, base](const Trial& trial, TrialContext& ctx) {
    const auto shards = static_cast<std::uint32_t>(trial.get_int("shards"));
    const AtaResult run = run_at(shards, &ctx);
    require(run.finish == base.finish &&
                run.stats.deliveries == base.stats.deliveries &&
                run.stats.cut_throughs == base.stats.cut_throughs &&
                run.stats.buffered_relays == base.stats.buffered_relays &&
                run.stats.background_packets ==
                    base.stats.background_packets &&
                run.stats.total_queue_wait == base.stats.total_queue_wait &&
                run.stats.events_processed == base.stats.events_processed,
            "shards=" + std::to_string(shards) +
                " diverged from the shards=1 baseline (the parallel "
                "engine's determinism contract is broken)");
    return std::vector<Metric>{
        {"finish_ps", static_cast<double>(run.finish)},
        {"events", static_cast<double>(run.stats.events_processed)},
        {"deliveries", static_cast<double>(run.stats.deliveries)},
        {"background_packets",
         static_cast<double>(run.stats.background_packets)},
        {"matches_baseline", 1.0},
    };
  };
  return campaign;
}

// --- saturation_sweep ----------------------------------------------------
// Open-loop continuous broadcast service to saturation (docs/WORKLOADS.md,
// EXPERIMENTS.md E19): Poisson session arrivals from every origin at a
// swept per-origin rate, bounded admission queues with FRS batching,
// measured over the steady-state window only.  IHC runs on Q_4; the tree
// baselines run on their native topologies (VRS on Q_4, VSQ on SQ_4, KS
// on H_3).  The arrival-stream seed derives from the rate alone, so every
// algorithm at one rate serves the identical offered traffic realization.

constexpr double kSweepRateAxis[] = {0.2, 0.4, 0.8, 1.2, 1.6};
constexpr double kQuickRateAxis[] = {0.4, 1.2};

std::string_view sweep_algos[] = {"ihc", "vrs", "vsq", "ks"};

CampaignSpec saturation_spec(std::string name, bool quick) {
  CampaignSpec spec;
  spec.name = std::move(name);
  spec.description =
      std::string("Open-loop broadcast sessions per origin at rate_per_us "
                  "(sessions/us), bounded admission queues (8) with FRS "
                  "batching (<= 4): IHC on Q_4 vs VRS (Q_4), VSQ (SQ_4), "
                  "KS (H_3); alpha = 20 ns, tau_S = 200 ns, mu = 2") +
      (quick ? "; quick two-rate CI variant" : "");
  Axis algo{"algo", {}};
  for (const std::string_view a : sweep_algos)
    algo.values.emplace_back(std::string(a));
  Axis rate{"rate_per_us", {}};
  for (const double r : quick ? std::span<const double>(kQuickRateAxis)
                              : std::span<const double>(kSweepRateAxis))
    rate.values.emplace_back(r);
  spec.axes = {std::move(algo), std::move(rate)};
  return spec;
}

CampaignSpec saturation_sweep_spec() {
  return saturation_spec("saturation_sweep", false);
}

CampaignSpec saturation_sweep_quick_spec() {
  return saturation_spec("saturation_sweep_quick", true);
}

Campaign make_saturation(CampaignSpec spec, std::size_t sessions_per_origin) {
  // Planners (and the topologies their routes point into) are built and
  // frozen here, on the caller's thread; trial workers only read them.
  auto planners = std::make_shared<
      std::map<std::string, SessionPlanner, std::less<>>>();
  {
    std::shared_ptr<const Topology> q4 = prebuilt_hypercube(4);
    planners->emplace("ihc", SessionPlanner::build("ihc", q4));
    planners->emplace("vrs", SessionPlanner::build("vrs", q4));
    planners->emplace("vsq", SessionPlanner::build(
                                 "vsq", std::make_shared<SquareMesh>(4)));
    planners->emplace("ks", SessionPlanner::build(
                                "ks", std::make_shared<HexMesh>(3)));
  }

  Campaign campaign;
  campaign.spec = std::move(spec);
  campaign.run = [planners, sessions_per_origin](const Trial& trial,
                                                 TrialContext& ctx) {
    const std::string& algo = trial.get_str("algo");
    const double rate = trial.get_double("rate_per_us");
    require(rate > 0.0, "rate_per_us must be positive");

    workload::WorkloadOptions opt;
    opt.net.alpha = sim_ns(20);
    opt.net.tau_s = sim_ns(200);  // small startup so contention dominates
    opt.net.mu = 2;
    opt.arrivals.model = workload::ArrivalModel::kPoisson;
    opt.arrivals.mean_gap_ps = static_cast<SimTime>(
        static_cast<double>(sim_us(1)) / rate + 0.5);
    opt.arrivals.sessions_per_origin = sessions_per_origin;
    opt.queue_capacity = 8;
    opt.batch_max = 4;
    // Deliberately independent of the algo axis: every algorithm at one
    // rate must serve the same offered arrival realization.
    opt.seed = derive_seed(
        "saturation_sweep",
        "rate_per_us=" + format_param(ParamValue(rate)));
    // Fixed-fraction warmup: every algorithm at one rate serves the same
    // arrival streams, so a shared measurement window makes accepted-
    // throughput differences pure admission/service effects instead of
    // per-algorithm warmup-detection artifacts (warmup.hpp).
    opt.warmup.mode = workload::WarmupMode::kFixedFraction;
    opt.tracer = ctx.tracer;
    opt.metrics = &ctx.metrics;

    const workload::WorkloadResult r =
        workload::run_workload(planners->at(algo), opt);
    const workload::MeasurementStats& m = r.measurement;
    return std::vector<Metric>{
        {"offered_sessions", static_cast<double>(r.offered)},
        {"admitted_sessions", static_cast<double>(r.admitted)},
        {"rejected_sessions", static_cast<double>(r.rejected)},
        {"completed_sessions", static_cast<double>(r.completed)},
        {"inflight_at_drain", static_cast<double>(r.inflight_at_drain)},
        {"batches", static_cast<double>(r.batches)},
        {"merged_sessions", static_cast<double>(r.merged_sessions)},
        {"max_queue_depth", static_cast<double>(r.max_queue_depth)},
        {"warmup_end_ps", static_cast<double>(m.warmup_end)},
        {"offered_per_us", m.offered_per_us},
        {"accepted_per_us", m.accepted_per_us},
        {"latency_mean_ps", m.mean_latency_ps},
        {"latency_p50_ps", m.latency_ps.p50},
        {"latency_p95_ps", m.latency_ps.p95},
        {"latency_p99_ps", m.latency_ps.p99},
        {"latency_p999_ps", m.latency_ps.p999},
        {"fairness_jain", m.fairness_jain},
    };
  };
  return campaign;
}

Campaign make_saturation_sweep() {
  return make_saturation(saturation_sweep_spec(), 60);
}

Campaign make_saturation_sweep_quick() {
  return make_saturation(saturation_sweep_quick_spec(), 24);
}

// --- zoo_sweep -----------------------------------------------------------
// Topology-zoo latency survey (docs/TOPOLOGIES.md, EXPERIMENTS.md E20):
// IHC on every certified zoo family, measured against the Section III
// lower bound tau_S + (N-1) alpha (model::optimal_lower_bound), plus the
// native tree baseline where the family has one (VRS on hypercubes, VSQ
// on square meshes, KS on hex meshes).  Axis labels are comma-free
// stand-ins for the full specs (e.g. "C13" for "C13:1,5") so trial ids
// and CSV rows stay single-column.

struct ZooEntry {
  std::string_view label;  // comma-free axis value
  std::string_view spec;   // make_topology() spec
};

constexpr ZooEntry kZooFullAxis[] = {
    {"Q4", "Q4"},     {"SQ4", "SQ4"}, {"H3", "H3"},       {"C13", "C13:1,5"},
    {"T3x4", "T3x4"}, {"TQ4", "TQ4"}, {"KT4x2", "KT4x2"},
};
constexpr ZooEntry kZooQuickAxis[] = {
    {"Q3", "Q3"},
    {"H2", "H2"},
    {"TQ3", "TQ3"},
    {"KT3x2", "KT3x2"},
};

CampaignSpec zoo_spec(std::string name, std::span<const ZooEntry> entries,
                      bool quick) {
  CampaignSpec spec;
  spec.name = std::move(name);
  spec.description =
      std::string("IHC latency across the topology zoo vs the Section III "
                  "lower bound tau_S + (N-1) alpha, plus the native tree "
                  "baseline (VRS/VSQ/KS) where one exists; alpha = 20 ns, "
                  "tau_S = 200 ns, eta = mu = 2") +
      (quick ? "; quick CI variant" : "");
  Axis topo{"topology", {}};
  for (const ZooEntry& e : entries)
    topo.values.emplace_back(std::string(e.label));
  spec.axes = {std::move(topo)};
  return spec;
}

CampaignSpec zoo_sweep_spec() {
  return zoo_spec("zoo_sweep", kZooFullAxis, false);
}

CampaignSpec zoo_sweep_quick_spec() {
  return zoo_spec("zoo_sweep_quick", kZooQuickAxis, true);
}

Campaign make_zoo(CampaignSpec spec, std::span<const ZooEntry> entries) {
  // Every zoo topology is built - and its lazily decomposed directed
  // cycles forced - here on the caller's thread; trial workers only read.
  auto zoo = std::make_shared<
      std::map<std::string, std::shared_ptr<const Topology>, std::less<>>>();
  for (const ZooEntry& e : entries) {
    std::shared_ptr<const Topology> topo = make_topology(e.spec);
    (void)topo->directed_cycles();
    zoo->emplace(std::string(e.label), std::move(topo));
  }

  Campaign campaign;
  campaign.spec = std::move(spec);
  campaign.run = [zoo](const Trial& trial, TrialContext& ctx) {
    const std::string& label = trial.get_str("topology");
    const std::shared_ptr<const Topology>& topo = zoo->at(label);

    AtaOptions opt;
    opt.net.alpha = sim_ns(20);
    opt.net.tau_s = sim_ns(200);  // small startup: the gap shows routing
    opt.net.mu = 2;
    opt.tracer = ctx.tracer;
    opt.metrics = &ctx.metrics;
    // Label-derived (not trial.seed) for the usual reason: re-ordering
    // the axis must not change any topology's traffic realization.
    opt.net.seed = derive_seed("zoo_sweep", "topology=" + label);

    const AtaResult ihc = run_ihc(*topo, IhcOptions{.eta = 2}, opt);
    const double lower =
        model::optimal_lower_bound(topo->node_count(), opt.net);

    std::vector<Metric> metrics{
        {"nodes", static_cast<double>(topo->node_count())},
        {"gamma", static_cast<double>(topo->gamma())},
        {"finish_ps", static_cast<double>(ihc.finish)},
        {"lower_bound_ps", lower},
        {"optimality_gap", static_cast<double>(ihc.finish) / lower},
    };

    // Native tree baseline, for the families that have one.  Its sim
    // counters stay out of the trial registry so the merged metrics
    // describe the IHC run alone.
    AtaOptions base_opt = opt;
    base_opt.metrics = nullptr;
    base_opt.tracer = nullptr;
    double base_finish = 0.0;
    if (const auto* q = dynamic_cast<const Hypercube*>(topo.get()))
      base_finish = static_cast<double>(run_vrs_ata(*q, base_opt).finish);
    else if (const auto* s = dynamic_cast<const SquareMesh*>(topo.get()))
      base_finish = static_cast<double>(run_vsq_ata(*s, base_opt).finish);
    else if (const auto* h = dynamic_cast<const HexMesh*>(topo.get()))
      base_finish = static_cast<double>(run_ks_ata(*h, base_opt).finish);
    if (base_finish > 0.0) {
      metrics.push_back({"baseline_finish_ps", base_finish});
      metrics.push_back({"baseline_gap", base_finish / lower});
      metrics.push_back(
          {"ihc_speedup", base_finish / static_cast<double>(ihc.finish)});
    }
    return metrics;
  };
  return campaign;
}

Campaign make_zoo_sweep() { return make_zoo(zoo_sweep_spec(), kZooFullAxis); }

Campaign make_zoo_sweep_quick() {
  return make_zoo(zoo_sweep_quick_spec(), kZooQuickAxis);
}

}  // namespace

std::string_view saturation_sweep_topology(std::string_view algo) {
  if (algo == "ihc" || algo == "vrs") return "Q4";
  if (algo == "vsq") return "SQ4";
  if (algo == "ks") return "H3";
  return {};
}

const std::vector<CampaignInfo>& builtin_campaigns() {
  static const std::vector<CampaignInfo> infos = [] {
    std::vector<CampaignInfo> v;
    for (const auto& [spec_of, make] :
         {std::pair{&rho_sweep_spec, &make_rho_sweep},
          std::pair{&fault_tolerance_spec, &make_fault_tolerance},
          std::pair{&duty_cycle_spec, &make_duty_cycle},
          std::pair{&chaos_soak_spec, &make_chaos_soak},
          std::pair{&events_scaling_spec, &make_events_scaling},
          std::pair{&saturation_sweep_spec, &make_saturation_sweep},
          std::pair{&saturation_sweep_quick_spec,
                    &make_saturation_sweep_quick},
          std::pair{&zoo_sweep_spec, &make_zoo_sweep},
          std::pair{&zoo_sweep_quick_spec, &make_zoo_sweep_quick}}) {
      const CampaignSpec spec = spec_of();
      v.push_back({spec.name, spec.description, spec.trial_count(), make});
    }
    return v;
  }();
  return infos;
}

Campaign make_builtin_campaign(std::string_view name) {
  std::string known;
  for (const CampaignInfo& info : builtin_campaigns()) {
    if (info.name == name) return info.make();
    if (!known.empty()) known += ", ";
    known += info.name;
  }
  detail::throw_config("unknown campaign '" + std::string(name) +
                       "' (known: " + known + ")");
}

}  // namespace ihc::exp
