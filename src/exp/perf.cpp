#include "exp/perf.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "util/error.hpp"

#include "core/ihc.hpp"
#include "obs/prof/profiler.hpp"
#include "exp/campaigns.hpp"
#include "exp/runner.hpp"
#include "sim/flit_network.hpp"
#include "sim/params.hpp"
#include "sim/routing.hpp"
#include "topology/hypercube.hpp"

namespace ihc::exp {

namespace {

using Clock = std::chrono::steady_clock;

template <typename Body>
double wall_ms_once(Body&& body) {
  const auto t0 = Clock::now();
  body();
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

template <typename Body>
double min_wall_ms(int repeats, Body&& body) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const double ms = wall_ms_once(body);
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

void keep_min(double& slot, double ms) {
  if (slot == 0.0 || ms < slot) slot = ms;
}

double per_sec(std::uint64_t n, double ms) {
  return ms > 0.0 ? static_cast<double>(n) * 1000.0 / ms : 0.0;
}

void finish_ab(BenchJob& job) {
  job.speedup_vs_legacy =
      job.wall_ms > 0.0 ? job.legacy_wall_ms / job.wall_ms : 0.0;
  job.events_per_sec = per_sec(job.events, job.wall_ms);
  job.trials_per_sec = per_sec(job.trials, job.wall_ms);
}

/// Times one builtin campaign on both engines.  Repeats interleave the
/// engines (optimized, legacy, optimized, ...) so both sample the same
/// machine-noise window; the per-engine minimum is kept.  Campaign
/// factories capture NetworkParams (and thus the engine choice) at
/// construction, so the campaign is rebuilt - outside the timed region -
/// after every flip of the process-global default.
BenchJob campaign_ab(std::string name, std::string workload,
                     const char* campaign, std::string filter, int repeats) {
  BenchJob job;
  job.name = std::move(name);
  job.workload = std::move(workload);
  RunOptions ro;
  ro.jobs = 1;
  ro.filter = std::move(filter);
  ro.collect_metrics = true;  // events = merged net.events_processed
  // The legacy baseline exists only in the sequential engine, so that
  // arm pins shards = 0 whatever `--shards` set process-wide (a sharded
  // "legacy" run would silently measure the parallel engine twice).
  const std::uint32_t optimized_shards = default_shards();
  for (int r = 0; r < repeats; ++r) {
    for (const bool legacy : {false, true}) {
      set_default_engine_legacy(legacy);
      set_default_shards(legacy ? 0 : optimized_shards);
      const Campaign c = [&] {
        const obs::prof::ScopedPhase setup(obs::prof::Phase::kSetup);
        return make_builtin_campaign(campaign);
      }();
      CampaignResult last;
      const double ms = wall_ms_once([&] { last = run_campaign(c, ro); });
      if (legacy) {
        keep_min(job.legacy_wall_ms, ms);
      } else {
        keep_min(job.wall_ms, ms);
        job.trials = last.trials.size();
        job.events = static_cast<std::uint64_t>(
            last.metrics.counter("net.events_processed"));
      }
    }
  }
  set_default_engine_legacy(false);
  set_default_shards(optimized_shards);
  finish_ab(job);
  return job;
}

/// Multi-hop background traffic drives the routing-table hot path
/// (path_into + flat link lookups) instead of the single-link process.
BenchJob multihop_ab(int repeats) {
  BenchJob job;
  job.name = "events_q6_multihop";
  job.workload =
      "one IHC run on Q_6, eta = 2, rho = 0.3 multi-hop background "
      "flows over a shared routing table";
  const Hypercube cube(6);
  (void)cube.directed_cycles();
  const RoutingTable routes(cube.graph());
  for (int r = 0; r < repeats; ++r) {
    for (const bool legacy : {false, true}) {
      AtaOptions opt;
      opt.net.alpha = sim_ns(20);
      opt.net.tau_s = sim_ns(200);
      opt.net.mu = 2;
      opt.net.background_mu = 8;
      opt.net.rho = 0.3;
      opt.net.background_mode = BackgroundMode::kMultiHopFlows;
      opt.net.seed = 0x9E3779B9ull;
      opt.net.legacy_engine = legacy;
      if (legacy) opt.net.shards = 0;  // the baseline is sequential-only
      opt.routes = &routes;
      AtaResult last;
      const double ms = wall_ms_once(
          [&] { last = run_ihc(cube, IhcOptions{.eta = 2}, opt); });
      if (legacy) {
        keep_min(job.legacy_wall_ms, ms);
      } else {
        keep_min(job.wall_ms, ms);
        job.events = last.stats.events_processed;
      }
    }
  }
  finish_ab(job);
  return job;
}

/// The multi-hop workload again, A/B'd across the time-sharded parallel
/// engine's shard counts: A = `--shards 2` worker threads, B (reported
/// in the legacy_* slots) = the `--shards 1` inline windowed baseline.
/// The two runs must agree byte for byte - that determinism check, not
/// the speedup, is the job's hard gate: on a single-core CI runner the
/// sharded run cannot be faster, only equally correct (the `hw_threads`
/// report field says which regime a number was measured in).
BenchJob multihop_shards_ab(int repeats) {
  BenchJob job;
  job.name = "events_q6_multihop_shards";
  job.workload =
      "one IHC run on Q_6, eta = 2, rho = 0.3 multi-hop background, on "
      "the time-sharded parallel engine: --shards 2 vs the --shards 1 "
      "windowed baseline (byte-identical by contract, docs/PARALLEL.md)";
  const Hypercube cube(6);
  (void)cube.directed_cycles();
  const RoutingTable routes(cube.graph());
  SimTime base_finish = 0;
  std::uint64_t base_events = 0;
  for (int r = 0; r < repeats; ++r) {
    for (const std::uint32_t shards : {2u, 1u}) {
      AtaOptions opt;
      opt.net.alpha = sim_ns(20);
      opt.net.tau_s = sim_ns(200);
      opt.net.mu = 2;
      opt.net.background_mu = 8;
      opt.net.rho = 0.3;
      opt.net.background_mode = BackgroundMode::kMultiHopFlows;
      opt.net.seed = 0x9E3779B9ull;
      opt.net.shards = shards;
      opt.routes = &routes;
      AtaResult last;
      const double ms = wall_ms_once(
          [&] { last = run_ihc(cube, IhcOptions{.eta = 2}, opt); });
      if (shards == 1) {
        keep_min(job.legacy_wall_ms, ms);
        base_finish = last.finish;
        base_events = last.stats.events_processed;
      } else {
        keep_min(job.wall_ms, ms);
        job.events = last.stats.events_processed;
        IHC_ENSURE(base_finish == 0 || last.finish == base_finish,
                   "sharded run diverged from the --shards 1 baseline");
      }
    }
    IHC_ENSURE(job.events == base_events,
               "sharded run processed a different event set than the "
               "--shards 1 baseline");
  }
  finish_ab(job);
  return job;
}

/// Flit-level wormhole simulation; no legacy engine exists here, so the
/// job reports throughput only.  reset() between iterations exercises
/// the pooled-arena reuse path.
BenchJob flit_wormhole(int repeats) {
  BenchJob job;
  job.name = "flit_wormhole_h5";
  job.workload =
      "IHC stage-0 worms on Q_5 (eta = 2, 4 flits, Dally-Seitz VCs), "
      "one pooled FlitNetwork reset between iterations";
  const Hypercube cube(5);
  const std::vector<FlitPacketSpec> packets =
      ihc_flit_packets(cube, 2, 4, /*dally_seitz=*/true);
  FlitParams fp;
  fp.vc_count = 2;
  fp.buffer_flits = 2;
  FlitNetwork net(cube.graph(), fp);
  FlitRunResult last;
  job.wall_ms = min_wall_ms(repeats, [&] {
    net.reset();
    for (const FlitPacketSpec& p : packets) net.add_packet(p);
    last = net.run(200'000);
  });
  job.events = last.flit_hops;
  job.events_per_sec = per_sec(job.events, job.wall_ms);
  return job;
}

}  // namespace

const BenchJob* BenchReport::find(std::string_view name) const {
  for (const BenchJob& job : jobs)
    if (job.name == name) return &job;
  return nullptr;
}

Json BenchReport::to_json() const {
  Json job_array = Json::array();
  for (const BenchJob& job : jobs) {
    Json j = Json::object();
    j.set("name", job.name)
        .set("workload", job.workload)
        .set("wall_ms", job.wall_ms)
        .set("legacy_wall_ms", job.legacy_wall_ms)
        .set("speedup_vs_legacy", job.speedup_vs_legacy)
        .set("events", job.events)
        .set("events_per_sec", job.events_per_sec)
        .set("trials", job.trials)
        .set("trials_per_sec", job.trials_per_sec);
    job_array.push(std::move(j));
  }
  Json speedups = Json::object();
  for (const BenchJob& job : jobs)
    if (job.legacy_wall_ms > 0.0)
      speedups.set(job.name, job.speedup_vs_legacy);
  Json doc = Json::object();
  doc.set("schema", "ihc-bench-v1")
      .set("tool", "ihc_cli bench-perf")
      .set("quick", quick)
      .set("repeats", repeats)
      .set("hw_threads", static_cast<std::int64_t>(hw_threads))
      .set("jobs", std::move(job_array))
      .set("speedups", std::move(speedups));
  if (profile.is_object()) doc.set("profile", profile);
  return doc;
}

BenchReport run_bench(const BenchOptions& options) {
  BenchReport report;
  report.quick = options.quick;
  report.repeats =
      options.repeats > 0 ? options.repeats : (options.quick ? 2 : 5);
  report.hw_threads = std::thread::hardware_concurrency();
  set_default_engine_legacy(false);
  report.jobs.push_back(campaign_ab(
      "rho_sweep_q6",
      "builtin rho_sweep campaign (IHC on Q_6 under background load), "
      "jobs = 1",
      "rho_sweep", "", report.repeats));
  report.jobs.push_back(multihop_ab(report.repeats));
  report.jobs.push_back(multihop_shards_ab(report.repeats));
  report.jobs.push_back(flit_wormhole(report.repeats));
  report.jobs.push_back(campaign_ab(
      "campaign_throughput",
      "builtin fault_tolerance campaign (Byzantine sweep, full-granularity "
      "ledgers), jobs = 1",
      "fault_tolerance", options.quick ? "t=0," : "", report.repeats));
  set_default_engine_legacy(false);
  return report;
}

}  // namespace ihc::exp
