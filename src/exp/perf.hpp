/// \file perf.hpp
/// \brief Pinned performance workloads behind `ihc_cli bench-perf`.
///
/// The simulator's hot paths (calendar event queue, flat route tables,
/// arena reuse) are only worth their complexity if the gain is tracked;
/// this module measures it.  Each benchmark job runs a fixed workload a
/// few times and keeps the *minimum* wall time per engine - on a shared
/// or single-core machine the minimum is the run least disturbed by
/// scheduling noise, so it is the statistic docs/PERFORMANCE.md defines
/// for comparisons.  Jobs that exercise the packet-level simulator run
/// A/B against the legacy binary-heap baseline
/// (NetworkParams::legacy_engine) in the same process, with the two
/// engines interleaved repeat-by-repeat so both sample the same
/// machine-noise window - the reported speedup never compares across
/// builds or load phases.
///
/// Results serialize as an `ihc-bench-v1` JSON document (see
/// docs/PERFORMANCE.md for the schema) written to BENCH_PR9.json at the
/// repo root by scripts/run_bench.sh and validated by
/// scripts/check_docs.py; `ihc_cli bench-diff` compares two such
/// documents job-by-job and exits non-zero past a regression threshold
/// (exp/bench_diff.hpp).  The report records the host's hardware
/// concurrency (`hw_threads`): the sharded A/B job's speedup is only
/// meaningful relative to it - on a single-core runner the expected
/// sharded speedup is <= 1 and the job's value is its byte-identity
/// check (docs/PARALLEL.md).  When the CLI runs with `--profile`, the
/// report embeds the wall-clock profiler's `ihc-profile-v1` document as
/// a `profile` block (docs/PROFILING.md).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace ihc::exp {

struct BenchOptions {
  /// Fewer repeats and filtered campaign grids - for CI smoke runs.
  bool quick = false;
  /// Timed repetitions per engine; 0 picks the default (5, or 2 when
  /// quick).  The minimum over repeats is reported.
  int repeats = 0;
};

/// One benchmark job's measurement.  A/B jobs fill the legacy_* fields;
/// for flit-level jobs (no legacy engine exists) they stay 0.
struct BenchJob {
  std::string name;          ///< stable id, e.g. "rho_sweep_q6"
  std::string workload;      ///< human description of what was timed
  double wall_ms = 0.0;      ///< optimized engine, min over repeats
  double legacy_wall_ms = 0.0;
  double speedup_vs_legacy = 0.0;  ///< legacy_wall_ms / wall_ms
  std::uint64_t events = 0;  ///< simulator events per iteration
  double events_per_sec = 0.0;
  std::uint64_t trials = 0;  ///< campaign trials per iteration
  double trials_per_sec = 0.0;
};

struct BenchReport {
  bool quick = false;
  int repeats = 0;
  /// std::thread::hardware_concurrency() of the measuring host - the
  /// context every sharded-speedup number must be read against.
  std::uint32_t hw_threads = 0;
  std::vector<BenchJob> jobs;
  /// Optional embedded `ihc-profile-v1` document (set by the CLI when
  /// bench-perf runs under --profile); null when absent.
  Json profile;

  /// nullptr when no job has that name.
  [[nodiscard]] const BenchJob* find(std::string_view name) const;

  /// The `ihc-bench-v1` document: schema/tool/quick/repeats/hw_threads,
  /// the job array, and a `speedups` object of the A/B jobs.
  [[nodiscard]] Json to_json() const;
};

/// Runs every pinned workload.  Restores the process-global default
/// engine (sim/params.hpp) to the calendar queue before returning.
[[nodiscard]] BenchReport run_bench(const BenchOptions& options = {});

}  // namespace ihc::exp
