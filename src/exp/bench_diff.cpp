#include "exp/bench_diff.hpp"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <ostream>
#include <string_view>

#include "util/error.hpp"

namespace ihc::exp {

namespace {

double number_or_zero(const Json& job, std::string_view key) {
  const Json* v = job.find(key);
  return v != nullptr && v->is_number() ? v->as_double() : 0.0;
}

std::uint32_t hw_threads_of(const Json& doc) {
  const Json* v = doc.find("hw_threads");
  return v != nullptr && v->is_number()
             ? static_cast<std::uint32_t>(v->as_int())
             : 0;
}

std::string fixed(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

bool BenchDiff::any_regression() const {
  return std::any_of(deltas.begin(), deltas.end(),
                     [](const BenchDelta& d) { return d.regressed; });
}

void BenchDiff::print(std::ostream& out) const {
  std::size_t width = 4;
  for (const BenchDelta& d : deltas) width = std::max(width, d.name.size());
  auto pad = [&](std::string s, std::size_t w) {
    if (s.size() < w) s.append(w - s.size(), ' ');
    return s;
  };
  out << pad("job", width) << "  " << pad("old_ms", 10) << "  "
      << pad("new_ms", 10) << "  " << pad("ratio", 7) << "  verdict\n";
  for (const BenchDelta& d : deltas) {
    std::string verdict = "ok";
    if (!d.in_old)
      verdict = "new only";
    else if (!d.in_new)
      verdict = "old only";
    else if (d.ratio == 0.0)
      verdict = "no baseline";
    else if (d.regressed)
      verdict = "REGRESSION";
    out << pad(d.name, width) << "  "
        << pad(d.in_old ? fixed(d.old_wall_ms) : "-", 10) << "  "
        << pad(d.in_new ? fixed(d.new_wall_ms) : "-", 10) << "  "
        << pad(d.ratio > 0.0 ? fixed(d.ratio) : "-", 7) << "  " << verdict
        << "\n";
  }
  if (old_hw_threads != new_hw_threads)
    out << "caveat: hw_threads differ (" << old_hw_threads << " -> "
        << new_hw_threads
        << "); wall times were measured on different hosts and sharded "
           "jobs are not comparable across core counts\n";
  out << (any_regression() ? "REGRESSION" : "PASS") << ": threshold "
      << fixed(threshold) << "x\n";
}

Json parse_bench_report(const std::string& text, const std::string& label) {
  std::string err;
  std::optional<Json> doc = Json::parse(text, &err);
  require(doc.has_value(), label + " is not valid JSON: " + err);
  require(doc->is_object(), label + " is not a JSON object");
  const Json* schema = doc->find("schema");
  require(schema != nullptr && schema->is_string() &&
              schema->as_string() == "ihc-bench-v1",
          label + " is not an ihc-bench-v1 document");
  const Json* jobs = doc->find("jobs");
  require(jobs != nullptr && jobs->is_array(),
          label + " has no jobs array");
  for (const Json& job : jobs->items()) {
    const Json* name = job.find("name");
    require(job.is_object() && name != nullptr && name->is_string(),
            label + " has a job without a name");
  }
  return *std::move(doc);
}

BenchDiff diff_bench_reports(const Json& old_doc, const Json& new_doc,
                             double threshold) {
  require(threshold > 1.0, "bench-diff threshold must be > 1");
  BenchDiff diff;
  diff.threshold = threshold;
  diff.old_hw_threads = hw_threads_of(old_doc);
  diff.new_hw_threads = hw_threads_of(new_doc);

  const std::vector<Json>& old_jobs = old_doc.find("jobs")->items();
  const std::vector<Json>& new_jobs = new_doc.find("jobs")->items();
  auto find_job = [](const std::vector<Json>& jobs,
                     std::string_view name) -> const Json* {
    for (const Json& job : jobs)
      if (job.find("name")->as_string() == name) return &job;
    return nullptr;
  };

  for (const Json& old_job : old_jobs) {
    BenchDelta d;
    d.name = old_job.find("name")->as_string();
    d.in_old = true;
    d.old_wall_ms = number_or_zero(old_job, "wall_ms");
    if (const Json* new_job = find_job(new_jobs, d.name)) {
      d.in_new = true;
      d.new_wall_ms = number_or_zero(*new_job, "wall_ms");
      if (d.old_wall_ms > 0.0) {
        d.ratio = d.new_wall_ms / d.old_wall_ms;
        d.regressed = d.ratio > threshold;
      }
    }
    diff.deltas.push_back(std::move(d));
  }
  for (const Json& new_job : new_jobs) {
    const std::string name(new_job.find("name")->as_string());
    if (find_job(old_jobs, name) != nullptr) continue;
    BenchDelta d;
    d.name = name;
    d.in_new = true;
    d.new_wall_ms = number_or_zero(new_job, "wall_ms");
    diff.deltas.push_back(std::move(d));
  }
  return diff;
}

}  // namespace ihc::exp
