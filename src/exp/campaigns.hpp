/// \file campaigns.hpp
/// \brief Registry of the repo's built-in experiment campaigns.
///
/// Each entry packages one of the paper's trial-heavy evaluations (the
/// rho sweep of Section VI-B, the Byzantine fault campaigns of Section I,
/// the duty-cycle feasibility scan of Section VI-A) as a declarative
/// parameter grid the engine can fan out across cores.  The bench
/// binaries and the `ihc_cli campaign` subcommand both run these.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "exp/campaign.hpp"

namespace ihc::exp {

struct CampaignInfo {
  std::string name;
  std::string description;
  std::size_t trial_count = 0;
  Campaign (*make)();
};

/// All built-in campaigns (cheap: construction is deferred to make()).
[[nodiscard]] const std::vector<CampaignInfo>& builtin_campaigns();

/// Instantiates a built-in campaign by name; throws ConfigError listing
/// the known names when it does not exist.
[[nodiscard]] Campaign make_builtin_campaign(std::string_view name);

/// Native topology of each saturation_sweep algorithm axis value
/// ("Q4", "SQ4", "H3"); empty for unknown names.  Shared by the campaign
/// builder and the `ihc-workload-v1` report writer (workload/sweep.cpp).
[[nodiscard]] std::string_view saturation_sweep_topology(
    std::string_view algo);

}  // namespace ihc::exp
