/// \file exp.hpp
/// \brief Umbrella header for the experiment-campaign engine.
///
/// Declarative parameter grids (campaign.hpp) expand into independent
/// trials with coordinate-derived seeds (trial.hpp, util/rng.hpp), a
/// thread pool fans them out across cores deterministically (runner.hpp),
/// and reporters emit ASCII tables or ihc-campaign-v1 JSON (report.hpp).
/// The repo's trial-heavy evaluations are registered in campaigns.hpp;
/// pinned performance workloads (ihc-bench-v1) live in perf.hpp and
/// their regression comparison (`ihc_cli bench-diff`) in bench_diff.hpp.
#pragma once

#include "exp/bench_diff.hpp"
#include "exp/campaign.hpp"
#include "exp/campaigns.hpp"
#include "exp/perf.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "exp/trial.hpp"
