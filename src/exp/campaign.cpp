#include "exp/campaign.hpp"

#include <unordered_set>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace ihc::exp {

std::string format_param(const ParamValue& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value))
    return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&value)) return json_number(*d);
  return std::get<std::string>(value);
}

const ParamValue& Trial::find(std::string_view name) const {
  for (const Param& p : params)
    if (p.name == name) return p.value;
  detail::throw_config("trial has no parameter named '" + std::string(name) +
                       "'");
}

std::int64_t Trial::get_int(std::string_view name) const {
  const ParamValue& v = find(name);
  const auto* i = std::get_if<std::int64_t>(&v);
  require(i != nullptr,
          "parameter '" + std::string(name) + "' is not an integer");
  return *i;
}

double Trial::get_double(std::string_view name) const {
  const ParamValue& v = find(name);
  if (const auto* d = std::get_if<double>(&v)) return *d;
  const auto* i = std::get_if<std::int64_t>(&v);
  require(i != nullptr,
          "parameter '" + std::string(name) + "' is not numeric");
  return static_cast<double>(*i);
}

const std::string& Trial::get_str(std::string_view name) const {
  const ParamValue& v = find(name);
  const auto* s = std::get_if<std::string>(&v);
  require(s != nullptr,
          "parameter '" + std::string(name) + "' is not a string");
  return *s;
}

const Metric* TrialResult::find_metric(std::string_view name) const {
  for (const Metric& m : metrics)
    if (m.name == name) return &m;
  return nullptr;
}

double TrialResult::metric(std::string_view name) const {
  const Metric* m = find_metric(name);
  require(m != nullptr,
          "trial '" + trial.id + "' has no metric '" + std::string(name) +
              "'");
  return m->value;
}

void CampaignSpec::validate() const {
  require(!name.empty(), "campaign needs a name");
  require(replicas >= 1, "campaign needs at least one replica");
  std::unordered_set<std::string> seen;
  for (const Axis& axis : axes) {
    require(!axis.name.empty(), "axis needs a name");
    require(axis.name != "rep", "'rep' is the reserved replica axis");
    require(!axis.values.empty(),
            "axis '" + axis.name + "' needs at least one value");
    require(seen.insert(axis.name).second,
            "duplicate axis '" + axis.name + "'");
  }
}

std::size_t CampaignSpec::trial_count() const {
  std::size_t n = replicas;
  for (const Axis& axis : axes) n *= axis.values.size();
  return n;
}

std::vector<Trial> expand_trials(const CampaignSpec& spec) {
  spec.validate();
  std::vector<Trial> trials;
  trials.reserve(spec.trial_count());

  // Odometer over the axes; first axis is the slowest digit, the replica
  // counter the fastest.
  std::vector<std::size_t> digit(spec.axes.size(), 0);
  while (trials.size() < spec.trial_count()) {
    for (std::uint32_t rep = 0; rep < spec.replicas; ++rep) {
      Trial t;
      t.index = trials.size();
      t.replica = rep;
      for (std::size_t a = 0; a < spec.axes.size(); ++a) {
        t.params.push_back(
            {spec.axes[a].name, spec.axes[a].values[digit[a]]});
        t.id += spec.axes[a].name + '=' +
                format_param(spec.axes[a].values[digit[a]]) + ',';
      }
      t.id += "rep=" + std::to_string(rep);
      t.seed = derive_seed(spec.name, t.id);
      trials.push_back(std::move(t));
    }
    // Advance the odometer (an axis-free spec is just its replicas).
    if (spec.axes.empty()) break;
    std::size_t a = spec.axes.size();
    while (a > 0) {
      --a;
      if (++digit[a] < spec.axes[a].values.size()) break;
      digit[a] = 0;
      if (a == 0) return trials;  // wrapped the slowest digit: done
    }
  }
  return trials;
}

}  // namespace ihc::exp
