/// \file report.hpp
/// \brief Campaign reporters: ASCII tables for humans, JSON for tooling.
///
/// The JSON document (schema "ihc-campaign-v1") records the campaign
/// name, the full parameter grid, every trial's coordinates + seed +
/// metrics + status, and per-metric aggregates (Welford summary plus
/// nearest-rank quantiles), so perf trajectories can be tracked by
/// machines instead of scraped from stdout.  Wall-clock fields are the
/// only scheduling-dependent content; disable them (include_timing =
/// false) to compare runs byte-for-byte - the engine's determinism tests
/// assert jobs=1 and jobs=8 produce identical timing-free documents.
#pragma once

#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "util/stats.hpp"

namespace ihc::exp {

/// Distribution of one metric across the campaign's successful trials.
struct MetricAggregate {
  std::string name;
  Summary summary;
  double p25 = 0, p50 = 0, p75 = 0, p90 = 0, p99 = 0;
};

/// Aggregates every metric that appears in at least one successful trial,
/// in first-appearance order (expansion order, so deterministic).
[[nodiscard]] std::vector<MetricAggregate> aggregate_metrics(
    const CampaignResult& result);

struct JsonReportOptions {
  /// Scheduling-dependent metadata: wall_ms / wall_clock_ms / jobs.
  /// Everything else in the document is a pure function of the campaign.
  bool include_timing = true;
  int indent = 2;
};

/// Serializes the campaign result as an ihc-campaign-v1 JSON document.
[[nodiscard]] std::string json_report(const CampaignResult& result,
                                      const JsonReportOptions& options = {});

/// Writes json_report() to `path`, creating parent directories.
void write_json_report(const CampaignResult& result, const std::string& path,
                       const JsonReportOptions& options = {});

/// Renders the result as the repo's usual ASCII tables: one per-trial
/// table plus one aggregate table.
[[nodiscard]] std::string ascii_report(const CampaignResult& result);

}  // namespace ihc::exp
