#include "exp/report.hpp"

#include <filesystem>
#include <fstream>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace ihc::exp {

std::vector<MetricAggregate> aggregate_metrics(const CampaignResult& result) {
  std::vector<MetricAggregate> aggregates;
  std::vector<std::vector<double>> values;  // parallel to aggregates
  auto slot = [&](const std::string& name) -> std::size_t {
    for (std::size_t i = 0; i < aggregates.size(); ++i)
      if (aggregates[i].name == name) return i;
    aggregates.push_back({name, {}, 0, 0, 0, 0, 0});
    values.emplace_back();
    return aggregates.size() - 1;
  };
  for (const TrialResult& r : result.trials) {
    if (!r.ok) continue;
    for (const Metric& m : r.metrics) {
      const std::size_t i = slot(m.name);
      aggregates[i].summary.add(m.value);
      values[i].push_back(m.value);
    }
  }
  for (std::size_t i = 0; i < aggregates.size(); ++i) {
    aggregates[i].p25 = quantile(values[i], 0.25);
    aggregates[i].p50 = quantile(values[i], 0.50);
    aggregates[i].p75 = quantile(values[i], 0.75);
    aggregates[i].p90 = quantile(values[i], 0.90);
    aggregates[i].p99 = quantile(values[i], 0.99);
  }
  return aggregates;
}

std::string json_report(const CampaignResult& result,
                        const JsonReportOptions& options) {
  Json doc = Json::object();
  doc.set("schema", "ihc-campaign-v1");
  doc.set("campaign", result.spec.name);
  doc.set("description", result.spec.description);

  Json params = Json::object();
  Json axes = Json::array();
  for (const Axis& axis : result.spec.axes) {
    Json a = Json::object();
    a.set("name", axis.name);
    Json vals = Json::array();
    for (const ParamValue& v : axis.values) {
      if (const auto* i = std::get_if<std::int64_t>(&v))
        vals.push(*i);
      else if (const auto* d = std::get_if<double>(&v))
        vals.push(*d);
      else
        vals.push(std::get<std::string>(v));
    }
    a.set("values", std::move(vals));
    axes.push(std::move(a));
  }
  params.set("axes", std::move(axes));
  params.set("replicas", static_cast<std::uint64_t>(result.spec.replicas));
  doc.set("params", std::move(params));

  if (options.include_timing)
    doc.set("jobs", static_cast<std::uint64_t>(result.jobs));
  doc.set("filtered_out", result.filtered_out);

  Json trials = Json::array();
  for (const TrialResult& r : result.trials) {
    Json t = Json::object();
    t.set("id", r.trial.id);
    t.set("seed", r.trial.seed);
    Json p = Json::object();
    for (const Param& param : r.trial.params) {
      if (const auto* i = std::get_if<std::int64_t>(&param.value))
        p.set(param.name, *i);
      else if (const auto* d = std::get_if<double>(&param.value))
        p.set(param.name, *d);
      else
        p.set(param.name, std::get<std::string>(param.value));
    }
    p.set("rep", static_cast<std::uint64_t>(r.trial.replica));
    t.set("params", std::move(p));
    t.set("ok", r.ok);
    if (!r.ok) t.set("error", r.error);
    Json metrics = Json::object();
    for (const Metric& m : r.metrics) metrics.set(m.name, m.value);
    t.set("metrics", std::move(metrics));
    if (options.include_timing) t.set("wall_ms", r.wall_ms);
    trials.push(std::move(t));
  }
  doc.set("trials", std::move(trials));

  Json aggregates = Json::object();
  for (const MetricAggregate& a : aggregate_metrics(result)) {
    Json s = Json::object();
    s.set("count", a.summary.count());
    s.set("mean", a.summary.mean());
    s.set("stddev", a.summary.stddev());
    s.set("min", a.summary.min());
    s.set("max", a.summary.max());
    s.set("p25", a.p25);
    s.set("p50", a.p50);
    s.set("p75", a.p75);
    s.set("p90", a.p90);
    s.set("p99", a.p99);
    aggregates.set(a.name, std::move(s));
  }
  doc.set("aggregates", std::move(aggregates));

  // Optional simulator-metrics block (RunOptions::collect_metrics): absent
  // when empty, so default reports are byte-identical to pre-observability
  // output.
  if (!result.metrics.empty()) doc.set("metrics", result.metrics.to_json());

  // Optional trace-analysis block (RunOptions::analyze): per-trial
  // critical-path / lint summaries, absent by default for the same
  // byte-identical reason (docs/ANALYSIS.md).
  if (!result.analyses.empty()) {
    Json analyses = Json::array();
    for (std::size_t i = 0; i < result.analyses.size(); ++i) {
      Json entry = Json::object();
      entry.set("id", result.trials[i].trial.id);
      entry.set("summary", result.analyses[i]);
      analyses.push(std::move(entry));
    }
    doc.set("analysis", std::move(analyses));
  }

  doc.set("failed", result.failed_count());
  if (options.include_timing) doc.set("wall_clock_ms", result.wall_ms);
  return doc.dump(options.indent);
}

void write_json_report(const CampaignResult& result, const std::string& path,
                       const JsonReportOptions& options) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p, std::ios::trunc);
  require(out.good(), "cannot open " + path + " for writing");
  out << json_report(result, options);
  out.close();
  require(out.good(), "failed writing " + path);
}

std::string ascii_report(const CampaignResult& result) {
  // Column set: union of metric names in first-appearance order.
  std::vector<std::string> names;
  for (const TrialResult& r : result.trials)
    for (const Metric& m : r.metrics) {
      bool known = false;
      for (const std::string& n : names) known = known || n == m.name;
      if (!known) names.push_back(m.name);
    }

  AsciiTable per_trial(
      "campaign '" + result.spec.name + "' (" +
      std::to_string(result.trials.size()) + " trials, " +
      std::to_string(result.jobs) + " jobs, " +
      fmt_double(result.wall_ms, 1) + " ms wall)\n" +
      result.spec.description);
  std::vector<std::string> header{"trial"};
  header.insert(header.end(), names.begin(), names.end());
  per_trial.set_header(header);
  for (const TrialResult& r : result.trials) {
    std::vector<std::string> row{r.trial.id};
    if (!r.ok) {
      row.resize(header.size(), "");
      if (header.size() > 1)
        row[1] = "FAILED: " + r.error;
      else
        row[0] += "  FAILED: " + r.error;
      per_trial.add_row(std::move(row));
      continue;
    }
    for (const std::string& n : names) {
      const Metric* m = r.find_metric(n);
      row.push_back(m != nullptr ? fmt_double(m->value, 4) : "");
    }
    per_trial.add_row(std::move(row));
  }

  AsciiTable agg("aggregates over successful trials");
  agg.set_header({"metric", "count", "mean", "stddev", "min", "p50", "p90",
                  "max"});
  for (const MetricAggregate& a : aggregate_metrics(result))
    agg.add_row({a.name, std::to_string(a.summary.count()),
                 fmt_double(a.summary.mean(), 4),
                 fmt_double(a.summary.stddev(), 4),
                 fmt_double(a.summary.min(), 4), fmt_double(a.p50, 4),
                 fmt_double(a.p90, 4), fmt_double(a.summary.max(), 4)});

  return per_trial.render() + "\n" + agg.render();
}

}  // namespace ihc::exp
