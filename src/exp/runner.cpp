#include "exp/runner.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include "obs/analyze/analysis.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace ihc::exp {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

std::size_t CampaignResult::failed_count() const {
  std::size_t n = 0;
  for (const TrialResult& r : trials)
    if (!r.ok) ++n;
  return n;
}

CampaignResult run_campaign(const Campaign& campaign,
                            const RunOptions& options) {
  require(static_cast<bool>(campaign.run), "campaign needs a trial function");
  const auto campaign_start = Clock::now();

  CampaignResult result;
  result.spec = campaign.spec;

  std::vector<Trial> trials = expand_trials(campaign.spec);
  if (!options.filter.empty()) {
    std::vector<Trial> kept;
    for (Trial& t : trials)
      if (t.id.find(options.filter) != std::string::npos)
        kept.push_back(std::move(t));
    result.filtered_out = trials.size() - kept.size();
    trials = std::move(kept);
  }

  result.trials.resize(trials.size());

  unsigned jobs = options.jobs != 0 ? options.jobs
                                    : std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  if (trials.size() < jobs) jobs = static_cast<unsigned>(trials.size());
  if (jobs == 0) jobs = 1;
  result.jobs = jobs;

  // Workers claim trial indices from a shared counter; each result is
  // written to its own pre-sized slot, so completion order never leaks
  // into the report.  Each trial also gets a private metrics registry;
  // they merge below in expansion order, so the merged registry (like
  // everything else) is independent of thread scheduling.
  std::vector<obs::MetricsRegistry> registries(trials.size());
  if (options.analyze) result.analyses.resize(trials.size());
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= trials.size()) return;
      TrialResult& out = result.trials[i];
      out.trial = trials[i];
      const auto start = Clock::now();
      try {
        TrialContext ctx{registries[i], nullptr};
        obs::Tracer tracer;
        obs::CollectingSink sink(options.analyze ? options.analyze_max_events
                                                 : 0);
        if (options.analyze) {
          tracer.attach(&sink);
          ctx.tracer = &tracer;
        }
        out.metrics = campaign.run(trials[i], ctx);
        out.ok = true;
        if (options.analyze) {
          const obs::analyze::Analysis analysis = obs::analyze::analyze_trace(
              sink.events(), {}, sink.dropped());
          // Pre-sized slot indexed by expansion order: deterministic
          // across --jobs like everything else in the report.
          result.analyses[i] = obs::analyze::trial_summary_json(analysis);
        }
      } catch (const std::exception& e) {
        out.error = e.what();
      } catch (...) {
        out.error = "unknown exception";
      }
      out.wall_ms = ms_between(start, Clock::now());
    }
  };

  if (jobs == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned j = 0; j < jobs; ++j) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  if (options.collect_metrics) {
    for (std::size_t i = 0; i < registries.size(); ++i)
      if (result.trials[i].ok) result.metrics.merge(registries[i]);
  }

  result.wall_ms = ms_between(campaign_start, Clock::now());
  return result;
}

}  // namespace ihc::exp
