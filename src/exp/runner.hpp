/// \file runner.hpp
/// \brief Thread-pool execution of a campaign's independent trials.
///
/// Parallelism lives entirely above the simulator: each trial runs the
/// ordinary single-threaded simulation, workers just pull trial indices
/// from a shared counter.  Because every trial's seed is derived from its
/// grid coordinates and results are stored by expansion index, a run with
/// --jobs 8 produces byte-identical per-trial metrics and aggregates to a
/// run with --jobs 1; only the wall-clock fields differ.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "exp/campaign.hpp"
#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace ihc::exp {

struct RunOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  unsigned jobs = 1;
  /// Substring filter on trial IDs; empty runs the full grid.
  std::string filter;
  /// Merge the per-trial metrics registries into CampaignResult::metrics
  /// (and thence the report's optional `metrics` block).  Off by default:
  /// reports stay byte-identical to engines without observability.
  bool collect_metrics = false;
  /// Trace every trial through a bounded CollectingSink and attach a
  /// per-trial ihc-analysis-v1 summary (the report's optional `analysis`
  /// block, `campaign --analyze`).  Off by default for the same
  /// byte-identical-reports reason as collect_metrics.
  bool analyze = false;
  /// Bounded CollectingSink capacity per trial when `analyze` is on;
  /// evictions surface as `dropped` in the analysis summaries.
  std::size_t analyze_max_events = std::size_t{1} << 20;
};

struct CampaignResult {
  CampaignSpec spec;
  unsigned jobs = 1;               ///< workers actually used
  std::vector<TrialResult> trials; ///< in expansion order
  std::size_t filtered_out = 0;    ///< grid points skipped by the filter
  double wall_ms = 0.0;            ///< whole-campaign wall clock
  /// Simulator metrics merged over successful trials in expansion order
  /// (empty unless RunOptions::collect_metrics).
  obs::MetricsRegistry metrics;
  /// Per-trial analysis summaries, index-aligned with `trials` (empty
  /// unless RunOptions::analyze; null entries for failed trials).
  std::vector<Json> analyses;

  [[nodiscard]] std::size_t failed_count() const;
};

/// Runs (the filtered subset of) the campaign's grid on `jobs` workers.
/// A trial that throws is recorded failed; siblings are unaffected.
[[nodiscard]] CampaignResult run_campaign(const Campaign& campaign,
                                          const RunOptions& options = {});

}  // namespace ihc::exp
