/// \file bench_diff.hpp
/// \brief Regression comparison of two `ihc-bench-v1` reports.
///
/// The tracked baselines (BENCH_PR3.json, BENCH_PR7.json,
/// BENCH_PR9.json) were only schema-validated until now; this module
/// gives CI teeth.  `ihc_cli bench-diff <old> <new>` matches jobs by
/// name, reports the per-job wall-time ratio, and flags any job whose
/// new time exceeds `threshold` x its old time - the CLI exits non-zero
/// on a flagged job, so a tracked-baseline regression fails the build
/// instead of rotting silently (docs/PROFILING.md documents the
/// protocol, including why CI uses a generous threshold: runners vary,
/// so only large regressions hard-fail there).
///
/// Comparisons across hosts are flagged, not forbidden: a mismatch in
/// the reports' `hw_threads` is surfaced as a caveat line because e.g.
/// the sharded A/B job's wall time is not comparable across core
/// counts (docs/PARALLEL.md).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace ihc::exp {

/// One matched (or unmatched) benchmark job in a comparison.
struct BenchDelta {
  std::string name;
  double old_wall_ms = 0.0;
  double new_wall_ms = 0.0;
  /// new / old; 0 when the job is missing from either report or the old
  /// time is zero (flit-style jobs report wall_ms only).
  double ratio = 0.0;
  bool in_old = false;
  bool in_new = false;
  bool regressed = false;  ///< ratio > threshold on a matched job
};

struct BenchDiff {
  double threshold = 0.0;       ///< ratio above which a job regresses
  std::uint32_t old_hw_threads = 0;
  std::uint32_t new_hw_threads = 0;
  std::vector<BenchDelta> deltas;  ///< old-report job order, then new-only

  [[nodiscard]] bool any_regression() const;
  /// ASCII table plus caveat lines (hw_threads mismatch, unmatched
  /// jobs); ends with one PASS/REGRESSION verdict line.
  void print(std::ostream& out) const;
};

/// Parses one `ihc-bench-v1` document; throws ConfigError on malformed
/// JSON, a missing/foreign `schema` tag, or a missing `jobs` array.
/// `label` names the document in error messages (typically its path).
[[nodiscard]] Json parse_bench_report(const std::string& text,
                                      const std::string& label);

/// Compares two parsed reports.  `threshold` must be > 1 (a ratio of
/// 1.0 is "exactly as fast"); jobs found in only one report are listed
/// but never regress.
[[nodiscard]] BenchDiff diff_bench_reports(const Json& old_doc,
                                           const Json& new_doc,
                                           double threshold);

}  // namespace ihc::exp
