/// \file campaign.hpp
/// \brief Declarative experiment campaigns: a parameter grid plus the
/// trial function that evaluates one grid point.
///
/// A CampaignSpec is the cross product of its axes (topology family x
/// size x switching x eta x rho x fault plan x ...) times a number of
/// seed replicas.  expand_trials() flattens it into independent Trials in
/// a deterministic row-major order - the order reports use, regardless of
/// which worker thread finishes first.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "exp/trial.hpp"

namespace ihc::obs {
class MetricsRegistry;
class Tracer;
}  // namespace ihc::obs

namespace ihc::exp {

/// One dimension of the parameter grid.
struct Axis {
  std::string name;
  std::vector<ParamValue> values;
};

struct CampaignSpec {
  std::string name;
  std::string description;
  std::vector<Axis> axes;
  /// Independent seed replicas per grid point (the innermost "rep" axis).
  std::uint32_t replicas = 1;

  /// Throws ConfigError on empty/duplicate axes or zero replicas.
  void validate() const;

  /// Product of axis sizes times replicas.
  [[nodiscard]] std::size_t trial_count() const;
};

/// Per-trial observability handles, provided by the engine.  `metrics` is
/// a registry private to this trial (the runner merges the per-trial
/// registries in expansion order, so reports stay deterministic across
/// --jobs); `tracer` is non-null only when the harness wants a structured
/// event trace of this trial (the `ihc_cli trace` subcommand) - trial
/// functions should pass both into AtaOptions and otherwise ignore them.
struct TrialContext {
  obs::MetricsRegistry& metrics;
  obs::Tracer* tracer = nullptr;
};

/// Evaluates one grid point and returns its metrics.  Runs on a worker
/// thread: it must not touch shared mutable state, and all randomness must
/// come from trial.seed (or derive_seed on a subset of the coordinates,
/// when variants must share a traffic realization - see the rho sweep).
using TrialFn =
    std::function<std::vector<Metric>(const Trial&, TrialContext&)>;

struct Campaign {
  CampaignSpec spec;
  TrialFn run;
};

/// Expands the grid row-major (first axis slowest, replicas innermost).
/// Each trial gets a canonical id "axis1=v1,axis2=v2,...,rep=r" and the
/// seed derive_seed(spec.name, id).
[[nodiscard]] std::vector<Trial> expand_trials(const CampaignSpec& spec);

}  // namespace ihc::exp
